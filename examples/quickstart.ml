(* Quickstart: build a local-approach DHT, grow it, inspect the balance.

   Run with: dune exec examples/quickstart.exe *)

open Dht_core
module Rng = Dht_prng.Rng

let () =
  Dht_core.Log.setup_from_env ();
  (* Parameters per the paper's recommendation (theta minimizes at 32). *)
  let pmin = 32 and vmin = 32 in
  let rng = Rng.of_int 2004 in
  let vid i = Vnode_id.make ~snode:i ~vnode:0 in

  (* The first vnode bootstraps group 0 and owns the whole hash range. *)
  let dht = Local_dht.create ~pmin ~vmin ~rng ~first:(vid 0) () in

  (* Create 255 more vnodes; each creation picks a victim group by a random
     hash lookup and rebalances only that group. *)
  for i = 1 to 255 do
    ignore (Local_dht.add_vnode dht ~id:(vid i))
  done;

  Printf.printf "vnodes:        %d\n" (Local_dht.vnode_count dht);
  Printf.printf "groups:        %d (ideal %d)\n" (Local_dht.group_count dht)
    (Local_dht.gideal dht);
  Printf.printf "sigma(Qv):     %.2f %%\n" (Local_dht.sigma_qv dht);
  Printf.printf "sigma(Qg):     %.2f %%\n" (Local_dht.sigma_qg dht);

  (* Route a few hash indices to their owners. *)
  let space = (Local_dht.params dht).Params.space in
  let module Space = Dht_hashspace.Space in
  print_endline "sample lookups:";
  List.iter
    (fun frac ->
      let p = int_of_float (frac *. float_of_int (Space.size space - 1)) in
      let span, owner = Local_dht.lookup dht p in
      Format.printf "  h=%.2f -> vnode %a (group %a), partition %a\n" frac
        Vnode_id.pp owner.Vnode.id Group_id.pp owner.Vnode.group
        Dht_hashspace.Span.pp span)
    [ 0.; 0.25; 0.5; 0.75; 0.999 ];

  (* Every invariant of the paper holds on the live structure. *)
  match Audit.check_local dht with
  | Ok () -> print_endline "audit: all invariants hold (G1'-G5', L1-L2)"
  | Error es ->
      List.iter print_endline es;
      exit 1
