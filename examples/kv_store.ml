(* Key/value store on the balanced DHT, in two acts.

   Act 1 — data plane: load records through the versioned store API, grow
   the cluster while serving, verify every key survives the rebalancing
   and that conflicting writes resolve by last-writer-wins.

   Act 2 — replication: a 3-snode runtime with rfactor=3 and quorum-2
   reads/writes; one snode crashes and reads still succeed, then the
   restarted replica re-converges.

   Run with: dune exec examples/kv_store.exe *)

open Dht_core
module Store = Dht_kv.Store
module Versioned = Dht_kv.Versioned
module Local_store = Dht_kv.Local_store
module Runtime = Dht_snode.Runtime
module Rng = Dht_prng.Rng

let vid i = Vnode_id.make ~snode:i ~vnode:0

let () =
  Dht_core.Log.setup_from_env ();
  let rng = Rng.of_int 42 in
  let store = Local_store.create ~pmin:32 ~vmin:16 ~rng ~first:(vid 0) () in

  (* Start with 32 vnodes. *)
  for i = 1 to 31 do
    ignore (Local_store.add_vnode store ~id:(vid i))
  done;

  (* Load 50k user records. Cells carry a version — a logical write stamp
     plus the writer's id — so replicated copies can merge later. *)
  let n = 50_000 in
  let kv = Local_store.store store in
  for i = 0 to n - 1 do
    Store.put_cell kv
      ~key:(Printf.sprintf "user:%d" i)
      (Versioned.cell
         ~value:(Printf.sprintf "{\"id\":%d}" i)
         ~ts:1.0 ~origin:0 ())
  done;
  let dht = Local_store.dht store in
  Printf.printf "loaded %d keys on %d vnodes\n" (Store.size kv)
    (Local_dht.vnode_count dht);
  Printf.printf "quota sigma: %.2f %%, key-load sigma: %.2f %%\n"
    (Local_dht.sigma_qv dht)
    (Store.load_sigma kv ~vnodes:(Local_dht.vnodes dht));

  (* Conflicting writes to one key resolve deterministically: the higher
     (ts, seq, origin) stamp wins, whatever the merge order. *)
  Store.put_cell kv ~key:"user:0"
    (Versioned.cell ~value:"{\"id\":0,\"v\":2}" ~ts:2.0 ~origin:1 ());
  Store.put_cell kv ~key:"user:0"
    (Versioned.cell ~value:"stale" ~ts:1.5 ~origin:7 ());
  assert (Store.get kv ~key:"user:0" = Some "{\"id\":0,\"v\":2}");
  print_endline "conflicting writes resolved by last-writer-wins";

  (* The cluster doubles while the store keeps answering. *)
  print_endline "doubling the cluster to 64 vnodes...";
  for i = 32 to 63 do
    ignore (Local_store.add_vnode store ~id:(vid i));
    (* Reads keep working mid-growth. *)
    assert (Local_store.get store ~key:"user:1" = Some "{\"id\":1}")
  done;
  Printf.printf "keys migrated by rebalancing: %d\n" (Store.migrations kv);

  (* Full audit: every key still reachable, with its value intact. *)
  let lost = ref 0 in
  for i = 1 to n - 1 do
    match Local_store.get store ~key:(Printf.sprintf "user:%d" i) with
    | Some v when v = Printf.sprintf "{\"id\":%d}" i -> ()
    | Some _ | None -> incr lost
  done;
  Printf.printf "keys lost or corrupted: %d\n" !lost;
  Printf.printf "quota sigma: %.2f %%, key-load sigma: %.2f %%\n"
    (Local_dht.sigma_qv dht)
    (Store.load_sigma kv ~vnodes:(Local_dht.vnodes dht));
  if !lost > 0 then exit 1;

  (* ---- Act 2: replication on the message-level snode runtime. ---- *)
  print_endline "\nreplication: 3 snodes, rfactor=3, R=W=2";
  let faults = Runtime.Fault.create ~seed:42 () in
  let rt =
    Runtime.create ~faults ~rfactor:3 ~read_quorum:2 ~write_quorum:2
      ~snodes:3 ~seed:42 ()
  in
  let acked = ref 0 in
  for i = 0 to 9 do
    Runtime.put rt ~via:(i mod 3)
      ~on_done:(fun () -> incr acked)
      ~key:(Printf.sprintf "k%d" i) ~value:(Printf.sprintf "v%d" i) ()
  done;
  Runtime.run rt;
  Printf.printf "stored 10 keys, %d acknowledged at W=2\n" !acked;

  (* Kill one replica: every partition still has 2 of its 3 copies, which
     meets both quorums, so reads (and writes) keep succeeding. *)
  Runtime.crash_snode rt 2;
  let ok = ref 0 in
  for i = 0 to 9 do
    Runtime.get rt ~via:(i mod 2) ~key:(Printf.sprintf "k%d" i) (fun v ->
        if v = Some (Printf.sprintf "v%d" i) then incr ok)
  done;
  let e = Runtime.engine rt in
  Runtime.run ~until:(Dht_event_sim.Engine.now e +. 0.5) rt;
  Printf.printf "snode 2 down: %d/10 reads still correct\n" !ok;

  (* Restart it; reliable delivery and anti-entropy re-converge the
     replica, so it serves quorum reads again. *)
  Runtime.restart_snode rt 2;
  Runtime.run rt;
  Runtime.anti_entropy rt;
  Runtime.run rt;
  let ok2 = ref 0 in
  for i = 0 to 9 do
    Runtime.get rt ~via:2 ~key:(Printf.sprintf "k%d" i) (fun v ->
        if v = Some (Printf.sprintf "v%d" i) then incr ok2)
  done;
  Runtime.run rt;
  Printf.printf "snode 2 restarted: %d/10 reads via it correct\n" !ok2;
  if !acked < 10 || !ok < 10 || !ok2 < 10 then exit 1
