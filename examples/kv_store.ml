(* Key/value store on the balanced DHT: load data, grow the cluster while
   serving, verify that every key survives the rebalancing and that data
   load tracks the quota balance.

   Run with: dune exec examples/kv_store.exe *)

open Dht_core
module Store = Dht_kv.Store
module Local_store = Dht_kv.Local_store
module Rng = Dht_prng.Rng

let vid i = Vnode_id.make ~snode:i ~vnode:0

let () =
  Dht_core.Log.setup_from_env ();
  let rng = Rng.of_int 42 in
  let store = Local_store.create ~pmin:32 ~vmin:16 ~rng ~first:(vid 0) () in

  (* Start with 32 vnodes. *)
  for i = 1 to 31 do
    ignore (Local_store.add_vnode store ~id:(vid i))
  done;

  (* Load 50k user records. *)
  let n = 50_000 in
  for i = 0 to n - 1 do
    Local_store.put store
      ~key:(Printf.sprintf "user:%d" i)
      ~value:(Printf.sprintf "{\"id\":%d}" i)
  done;
  let kv = Local_store.store store in
  let dht = Local_store.dht store in
  Printf.printf "loaded %d keys on %d vnodes\n" (Store.size kv)
    (Local_dht.vnode_count dht);
  Printf.printf "quota sigma: %.2f %%, key-load sigma: %.2f %%\n"
    (Local_dht.sigma_qv dht)
    (Store.load_sigma kv ~vnodes:(Local_dht.vnodes dht));

  (* The cluster doubles while the store keeps answering. *)
  print_endline "doubling the cluster to 64 vnodes...";
  for i = 32 to 63 do
    ignore (Local_store.add_vnode store ~id:(vid i));
    (* Reads keep working mid-growth. *)
    assert (Local_store.get store ~key:"user:0" = Some "{\"id\":0}")
  done;
  Printf.printf "keys migrated by rebalancing: %d\n" (Store.migrations kv);

  (* Full audit: every key still reachable, with its value intact. *)
  let lost = ref 0 in
  for i = 0 to n - 1 do
    match Local_store.get store ~key:(Printf.sprintf "user:%d" i) with
    | Some v when v = Printf.sprintf "{\"id\":%d}" i -> ()
    | Some _ | None -> incr lost
  done;
  Printf.printf "keys lost or corrupted: %d\n" !lost;
  Printf.printf "quota sigma: %.2f %%, key-load sigma: %.2f %%\n"
    (Local_dht.sigma_qv dht)
    (Store.load_sigma kv ~vnodes:(Local_dht.vnodes dht));
  if !lost > 0 then exit 1
