(* Churn under load: a burst of vnode creations arrives as a Poisson stream
   and the cluster must absorb it. The global approach handles creations one
   at a time (every snode takes part in each); the local approach lets
   disjoint groups rebalance concurrently. This example runs both protocols
   over the event-driven simulator and prints the contrast.

   Run with: dune exec examples/churn.exe *)

module Csim = Dht_protocol.Creation_sim
module Trace = Dht_workload.Trace
module Rng = Dht_prng.Rng
module Table = Dht_report.Table

let () =
  Dht_core.Log.setup_from_env ();
  let snodes = 64 in
  let creations = 512 in
  let rate = 1500. in
  let arrivals = Trace.poisson ~rng:(Rng.of_int 1) ~n:creations ~rate in
  Printf.printf
    "%d vnode creations arriving at %.0f/s on a %d-node cluster (1 Gb/s fabric)\n\n"
    creations rate snodes;

  let table =
    Table.create
      ~headers:
        [ "approach"; "makespan s"; "mean latency ms"; "p95 ms"; "messages";
          "peak concurrency" ]
  in
  let row label approach =
    let cfg = { (Csim.default_config approach) with Csim.snodes } in
    let r = Csim.simulate cfg ~arrivals ~seed:7 in
    Table.add_row table
      [
        label;
        Printf.sprintf "%.3f" r.Csim.makespan;
        Printf.sprintf "%.2f" (1000. *. Csim.mean_latency r);
        Printf.sprintf "%.2f" (1000. *. Csim.p95_latency r);
        string_of_int r.Csim.messages;
        string_of_int r.Csim.max_concurrent;
      ]
  in
  row "global" Csim.Global_approach;
  List.iter
    (fun vmin ->
      row (Printf.sprintf "local Vmin=%d" vmin) (Csim.Local_approach { vmin }))
    [ 16; 32; 64 ];
  Table.print table;
  print_endline
    "\nSmaller groups (lower Vmin) admit more concurrent balancing events —\n\
     the parallelism the local approach was designed for (paper section 3) —\n\
     at the cost of the balance quality shown by `dht_sim fig6`."
