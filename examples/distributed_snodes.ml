(* The paper's architecture end-to-end: a cluster of snodes with partial
   knowledge only — local vnodes, replicated LPDR copies, stale-able routing
   caches — creating vnodes through the message-level protocol of sections
   3.6/3.7 while serving reads and writes.

   Run with: dune exec examples/distributed_snodes.exe *)

module Runtime = Dht_snode.Runtime
module Network = Dht_event_sim.Network
open Dht_core

let () =
  Dht_core.Log.setup_from_env ();
  let snodes = 16 in
  let rt = Runtime.create ~pmin:32 ~approach:(Runtime.Local { vmin = 16 }) ~snodes ~seed:2004 () in

  (* Load data while the DHT is still one vnode on snode 0. *)
  for i = 0 to 4999 do
    Runtime.put rt ~via:(i mod snodes)
      ~key:(Printf.sprintf "user:%d" i)
      ~value:(string_of_int i) ()
  done;
  Runtime.run rt;
  Printf.printf "loaded %d keys into the bootstrap vnode\n"
    (Runtime.completed_puts rt);

  (* Fire 127 concurrent creation requests: victim groups are found by
     routed lookups, group managers serialize per group, donors stream
     partitions (and the keys inside) straight to the newcomers. *)
  for i = 1 to 127 do
    Runtime.create_vnode rt
      ~id:(Vnode_id.make ~snode:(i mod snodes) ~vnode:(i / snodes))
      ()
  done;
  Runtime.run rt;
  Printf.printf "created %d vnodes concurrently; %d routed ops had to retry\n"
    (Runtime.completed_creations rt)
    (Runtime.retries rt);
  Printf.printf "distributed sigma(Qv): %.2f %%\n" (Runtime.sigma_qv rt);
  Printf.printf "fabric traffic: %d messages, %.1f MB\n"
    (Network.messages (Runtime.network rt))
    (float_of_int (Network.bytes_sent (Runtime.network rt)) /. 1e6);

  (* Every key is still reachable from any snode, through caches that were
     never globally synchronized. *)
  let wrong = ref 0 in
  for i = 0 to 4999 do
    Runtime.get rt ~via:((i * 7) mod snodes)
      ~key:(Printf.sprintf "user:%d" i)
      (fun v -> if v <> Some (string_of_int i) then incr wrong)
  done;
  Runtime.run rt;
  Printf.printf "re-read %d keys from random snodes: %d wrong\n"
    (Runtime.completed_gets rt) !wrong;

  (* A node departs: its partitions (and keys) drain to the least-loaded
     survivors of its group through the same prepare/commit machinery. *)
  let departed = ref None in
  Runtime.remove_vnode rt ~id:(Vnode_id.make ~snode:3 ~vnode:1) (fun ok ->
      departed := Some ok);
  Runtime.run rt;
  (match !departed with
  | Some true -> print_endline "vnode 3.1 departed; partitions re-absorbed"
  | Some false ->
      print_endline "vnode 3.1's departure was refused (L2 floor) - kept"
  | None -> prerr_endline "departure did not resolve");

  (* Global verification by gathering every snode's slice. *)
  match Runtime.audit rt with
  | Ok () ->
      print_endline
        "audit: coverage, LPDR-copy convergence, invariants and data \
         placement all hold"
  | Error es ->
      List.iter print_endline es;
      exit 1
