(* Heterogeneous cluster: machines from three hardware generations enroll in
   one DHT with vnode counts proportional to their resources, and one node
   later raises its enrollment after a disk upgrade (the paper's on-line
   repartitioning scenario, §2.1.2).

   Run with: dune exec examples/heterogeneous_cluster.exe *)

open Dht_core
module Cluster = Dht_cluster
module Rng = Dht_prng.Rng
module Table = Dht_report.Table

let () =
  Dht_core.Log.setup_from_env ();
  (* 8 old machines, 4 mid-generation (2x), 2 new (4x). *)
  let cluster =
    Cluster.Topology.generations ~counts:[ (8, 1.0); (4, 2.0); (2, 4.0) ]
  in
  let n = Cluster.Topology.size cluster in
  let counts =
    Cluster.Enrollment.vnodes_of_profiles ~total:128 cluster.Cluster.Topology.nodes
  in
  let shares = Cluster.Enrollment.ideal_shares (Cluster.Topology.scores cluster) in

  (* Interleave vnode creation across cluster nodes. *)
  let rng = Rng.of_int 7 in
  let next = Array.make n 0 in
  let dht = ref None in
  let create node =
    let id = Vnode_id.make ~snode:node ~vnode:next.(node) in
    next.(node) <- next.(node) + 1;
    match !dht with
    | None -> dht := Some (Local_dht.create ~pmin:32 ~vmin:16 ~rng ~first:id ())
    | Some d -> ignore (Local_dht.add_vnode d ~id)
  in
  let remaining = Array.copy counts in
  let left = ref (Array.fold_left ( + ) 0 counts) in
  let cursor = ref 0 in
  while !left > 0 do
    let node = !cursor mod n in
    if remaining.(node) > 0 then begin
      create node;
      remaining.(node) <- remaining.(node) - 1;
      decr left
    end;
    incr cursor
  done;
  let dht = Option.get !dht in

  let quota_of_node node =
    let space = (Local_dht.params dht).Params.space in
    Array.fold_left
      (fun acc v ->
        if v.Vnode.id.Vnode_id.snode = node then acc +. Vnode.quota space v
        else acc)
      0. (Local_dht.vnodes dht)
  in

  let table =
    Table.create ~headers:[ "node"; "profile"; "vnodes"; "ideal share"; "actual quota" ]
  in
  for node = 0 to n - 1 do
    Table.add_row table
      [
        string_of_int node;
        cluster.Cluster.Topology.nodes.(node).Cluster.Profile.name;
        string_of_int counts.(node);
        Printf.sprintf "%.4f" shares.(node);
        Printf.sprintf "%.4f" (quota_of_node node);
      ]
  done;
  Table.print table;

  (* Node 0 hot-swaps in a bigger disk: its enrollment level rises, which in
     this model means creating additional vnodes on that node. *)
  print_endline "\nnode 0 upgrades its storage (enrollment +4 vnodes):";
  for _ = 1 to 4 do
    create 0
  done;
  Printf.printf "node 0 quota: %.4f (was %.4f as share)\n" (quota_of_node 0)
    shares.(0);
  match Audit.check_local dht with
  | Ok () -> print_endline "audit: invariants hold after the enrollment change"
  | Error es ->
      List.iter print_endline es;
      exit 1
