(* Aggregates every suite into one alcotest binary (`dune runtest`). *)

let () =
  Alcotest.run "balanced_dht"
    [
      ("prng", Test_prng.suite);
      ("stats", Test_stats.suite);
      ("hashspace", Test_hashspace.suite);
      ("hashes", Test_hashes.suite);
      ("ids", Test_ids.suite);
      ("balancer", Test_balancer.suite);
      ("global-dht", Test_global.suite);
      ("local-dht", Test_local.suite);
      ("metrics", Test_metrics.suite);
      ("consistent-hashing", Test_ch.suite);
      ("cluster", Test_cluster.suite);
      ("event-sim", Test_event_sim.suite);
      ("protocol", Test_protocol.suite);
      ("kv", Test_kv.suite);
      ("removal", Test_removal.suite);
      ("access-balancer", Test_access_balancer.suite);
      ("workload", Test_workload.suite);
      ("experiments", Test_experiments.suite);
      ("report", Test_report.suite);
      ("wire", Test_wire.suite);
      ("replication", Test_replication.suite);
      ("batching", Test_batching.suite);
      ("snode-runtime", Test_runtime.suite);
      ("snapshot", Test_snapshot.suite);
      ("registry", Test_registry.suite);
      ("telemetry", Test_telemetry.suite);
      ("obsv", Test_obsv.suite);
      ("check", Test_check.suite);
      ("active-balance", Test_balance.suite);
      ("linear", Test_linear.suite);
      ("routing", Test_routing.suite);
      ("explorer", Test_explorer.suite);
      ("merkle", Test_merkle.suite);
    ]
