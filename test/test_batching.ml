(* Transmission batching: exact envelope accounting for coalesced frames,
   per-(src, dst) FIFO through any linger window, dedup of Req-framed
   batches under retransmission, and crash recovery of staged parts. *)

module Runtime = Dht_snode.Runtime
module Wire = Dht_snode.Wire
module Engine = Dht_event_sim.Engine
module Network = Dht_event_sim.Network
module Rng = Dht_prng.Rng

let check = Alcotest.check

let audit_ok rt what =
  match Runtime.audit rt with
  | Ok () -> ()
  | Error es -> Alcotest.fail (what ^ ":\n" ^ String.concat "\n" es)

(* --- Wire.size_bytes over Batch --- *)

(* The documented size law, stated independently of the implementation:
   one 64-byte envelope for the whole frame, then per part a 16-byte frame
   header plus the part's body with its own envelope amortized away. *)
let envelope = 64
let per_entry = 16

let part_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun t -> Wire.Put_ack { token = t; hint = None }) small_nat;
        map2 (fun s f -> Wire.Ack { seq = s; floor = f }) small_nat small_nat;
        map
          (fun t -> Wire.Get_reply { token = t; value = Some "v"; hint = None })
          small_nat;
        map
          (fun k ->
            Wire.Repl_put
              {
                token = k;
                key = "k" ^ string_of_int k;
                point = k;
                cell = Dht_kv.Versioned.cell ~value:"x" ~ts:1.0 ~origin:0 ();
              })
          small_nat;
      ])

let prop_batch_size_exact =
  QCheck.Test.make ~name:"batch size = envelope + per-part amortized bodies"
    ~count:200
    (QCheck.make QCheck.Gen.(list_size (int_range 1 12) part_gen))
    (fun parts ->
      let expected =
        List.fold_left
          (fun acc p -> acc + per_entry + Wire.size_bytes p - envelope)
          envelope parts
      in
      Wire.size_bytes (Wire.Batch parts) = expected)

(* Two parts or more: each part adds 16 bytes of frame header but saves a
   64-byte envelope, so every real coalescing (the runtime sends singleton
   flushes raw, precisely because a 1-part batch would cost 16 bytes) is a
   net win on the wire. *)
let prop_batch_never_larger =
  QCheck.Test.make
    ~name:"coalescing never costs more than sending parts alone" ~count:200
    (QCheck.make QCheck.Gen.(list_size (int_range 2 12) part_gen))
    (fun parts ->
      Wire.size_bytes (Wire.Batch parts)
      <= List.fold_left (fun acc p -> acc + Wire.size_bytes p) 0 parts)

(* --- per-(src, dst) FIFO across random schedules and linger windows --- *)

(* Single-copy mode makes delivery order observable: Op_put is an
   unconditional replace, so the final value of a key IS the last write
   delivered. Fire bursts of same-key puts back to back (same source, same
   owner, one virtual instant) under a random linger window: whatever the
   coalescing does, the last-issued value must win at every key. *)
let prop_fifo_under_linger =
  QCheck.Test.make ~name:"random schedules keep per-(src,dst) FIFO" ~count:25
    QCheck.(pair small_int (QCheck.make QCheck.Gen.(float_bound_inclusive 3e-4)))
    (fun (salt, linger) ->
      let rng = Rng.of_int salt in
      let rt = Runtime.create ~snodes:6 ~seed:(42 + salt) ~linger () in
      let keys = Array.init 8 (fun i -> Printf.sprintf "fifo-%d" i) in
      let last = Hashtbl.create 8 in
      for round = 0 to 19 do
        let key = keys.(Rng.int rng (Array.length keys)) in
        let via = Rng.int rng 6 in
        let burst = 1 + Rng.int rng 4 in
        for b = 0 to burst - 1 do
          let v = Printf.sprintf "%d.%d" round b in
          Hashtbl.replace last key v;
          Runtime.put rt ~via ~key ~value:v ()
        done;
        (* Drain between rounds so cross-via races cannot mask ordering:
           within a round the burst shares one (src, dst) chain. *)
        Runtime.run rt
      done;
      let wrong = ref 0 in
      Hashtbl.iter
        (fun key v ->
          Runtime.get rt ~key (fun got ->
              if got <> Some v then incr wrong))
        last;
      Runtime.run rt;
      if !wrong > 0 then
        QCheck.Test.fail_reportf "%d keys lost their last write (linger %g)"
          !wrong linger;
      audit_ok rt "fifo under linger";
      true)

(* Same schedule, batching on vs off: the observable outcome (every final
   value) must be identical — linger is a transport knob, not semantics. *)
let test_linger_transparent () =
  let final ~linger =
    let rt = Runtime.create ~snodes:5 ~seed:7 ~linger () in
    for i = 0 to 39 do
      Runtime.put rt ~via:(i mod 5)
        ~key:(Printf.sprintf "t%d" (i mod 10))
        ~value:(string_of_int i) ()
    done;
    Runtime.run rt;
    List.init 10 (fun i ->
        let got = ref None in
        Runtime.get rt ~key:(Printf.sprintf "t%d" i) (fun v -> got := v);
        Runtime.run rt;
        !got)
  in
  let unbatched = final ~linger:0. in
  let batched = final ~linger:5e-5 in
  check
    Alcotest.(list (option string))
    "same values either way" unbatched batched

(* --- dedup under retransmission --- *)

let test_dedup_under_retransmission () =
  (* Drops force Req-framed batches to retransmit; duplicates deliver some
     frames twice. The seq/floor dedup must apply each batch exactly once:
     every acked write keeps its value, callbacks fire exactly once, and
     the quorum bookkeeping balances. *)
  let faults = Runtime.Fault.create ~drop:0.15 ~duplicate:0.2 ~seed:77 () in
  let rt =
    Runtime.create ~faults ~rfactor:3 ~read_quorum:2 ~write_quorum:2
      ~snodes:5 ~seed:77 ~linger:5e-5 ()
  in
  let acked = ref 0 in
  for i = 0 to 29 do
    Runtime.put rt ~via:(i mod 5)
      ~on_done:(fun () -> incr acked)
      ~key:(Printf.sprintf "d%d" i) ~value:(string_of_int i) ()
  done;
  Runtime.run rt;
  check Alcotest.int "every write acked exactly once" 30 !acked;
  check Alcotest.int "no operation stranded" 0 (Runtime.pending_operations rt);
  let wrong = ref 0 in
  for i = 0 to 29 do
    Runtime.get rt ~via:(i mod 5) ~key:(Printf.sprintf "d%d" i) (fun v ->
        if v <> Some (string_of_int i) then incr wrong)
  done;
  Runtime.run rt;
  check Alcotest.int "no value lost or duplicated into staleness" 0 !wrong;
  audit_ok rt "dedup under retransmission"

(* --- crash with parts still lingering --- *)

let test_crash_flushes_staged_parts () =
  (* A long linger window keeps parts staged; a crash kills the flush
     timer but not the staged parts. On restart the timer re-arms and the
     writes complete. *)
  let faults = Runtime.Fault.create ~seed:5 () in
  let rt = Runtime.create ~faults ~snodes:4 ~seed:5 ~linger:0.01 () in
  let e = Runtime.engine rt in
  let acked = ref 0 in
  for i = 0 to 4 do
    Runtime.put rt ~via:3
      ~on_done:(fun () -> incr acked)
      ~key:(Printf.sprintf "c%d" i) ~value:(string_of_int i) ()
  done;
  (* Let the puts stage toward their owners but crash before the 10ms
     flush window elapses. *)
  Runtime.run ~until:(Engine.now e +. 0.001) rt;
  Runtime.crash_snode rt 3;
  Runtime.run ~until:(Engine.now e +. 0.05) rt;
  Runtime.restart_snode rt 3;
  Runtime.run rt;
  check Alcotest.int "staged writes survive the crash" 5 !acked;
  let wrong = ref 0 in
  for i = 0 to 4 do
    Runtime.get rt ~via:3 ~key:(Printf.sprintf "c%d" i) (fun v ->
        if v <> Some (string_of_int i) then incr wrong)
  done;
  Runtime.run rt;
  check Alcotest.int "values readable after recovery" 0 !wrong;
  audit_ok rt "crash with staged parts"

(* --- read repair through coalesced envelopes --- *)

let test_read_repair_through_batching () =
  (* Same stale-rejoin scenario as the unbatched read-repair pin in
     test_replication.ml, but with a linger window: replies arrive inside
     coalesced envelopes and the coordinator must still spot the stale
     replica and push the winner. *)
  let rt =
    Runtime.create ~rfactor:3 ~read_quorum:3 ~write_quorum:2 ~snodes:5
      ~seed:29 ~linger:5e-5 ()
  in
  Runtime.crash_snode rt 2;
  let e = Runtime.engine rt in
  Runtime.put rt ~via:0 ~key:"k" ~value:"fresh" ();
  Runtime.run ~until:(Engine.now e +. 0.2) rt;
  Runtime.restart_snode rt 2;
  let got = ref None in
  Runtime.get rt ~via:0 ~key:"k" (fun v -> got := v);
  Runtime.run rt;
  check Alcotest.(option string) "read returns the winner" (Some "fresh") !got;
  let s = Runtime.repl_stats rt in
  check Alcotest.bool "read repair fired" true (s.Runtime.read_repairs >= 1)

(* --- batching really batches (and the telemetry sees it) --- *)

let test_batching_collapses_fanout () =
  let traffic ~linger =
    let rt =
      Runtime.create ~rfactor:3 ~read_quorum:2 ~write_quorum:2 ~snodes:6
        ~seed:11 ~linger ()
    in
    for i = 0 to 63 do
      Runtime.put rt ~via:(i mod 6) ~key:(Printf.sprintf "b%d" i) ~value:"v"
        ()
    done;
    Runtime.run rt;
    let net = Runtime.network rt in
    (Network.messages net, Network.batches net, Network.batched_parts net,
     Network.batch_bytes_saved net)
  in
  let m0, b0, _, _ = traffic ~linger:0. in
  let m1, b1, parts, saved = traffic ~linger:5e-5 in
  check Alcotest.int "linger 0 sends no envelopes" 0 b0;
  check Alcotest.bool "quorum fan-out coalesces (>=2x fewer messages)" true
    (m1 * 2 <= m0);
  check Alcotest.bool "envelopes carry multiple parts" true (b1 > 0 && parts > 2 * b1);
  check Alcotest.bool "envelope bytes saved accounted" true (saved > 0)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_batch_size_exact;
    QCheck_alcotest.to_alcotest prop_batch_never_larger;
    QCheck_alcotest.to_alcotest prop_fifo_under_linger;
    Alcotest.test_case "linger is semantically transparent" `Quick
      test_linger_transparent;
    Alcotest.test_case "dedup under retransmission" `Quick
      test_dedup_under_retransmission;
    Alcotest.test_case "crash flushes staged parts on restart" `Quick
      test_crash_flushes_staged_parts;
    Alcotest.test_case "read repair through coalesced envelopes" `Quick
      test_read_repair_through_batching;
    Alcotest.test_case "quorum fan-out coalesces" `Quick
      test_batching_collapses_fanout;
  ]
