(* Replication subsystem: placement policy, versioned cells, quorum
   reads/writes, hinted handoff, anti-entropy repair and the determinism
   pin of the replicated message protocol. *)

open Dht_core
module Placement = Dht_replication.Placement
module Versioned = Dht_kv.Versioned
module Runtime = Dht_snode.Runtime
module Engine = Dht_event_sim.Engine
module Rng = Dht_prng.Rng
module Registry = Dht_telemetry.Registry
module Trace = Dht_telemetry.Trace

let check = Alcotest.check

let audit_ok rt what =
  match Runtime.audit rt with
  | Ok () -> ()
  | Error es -> Alcotest.fail (what ^ ":\n" ^ String.concat "\n" es)

(* --- Placement --- *)

let prop_placement =
  QCheck.Test.make ~name:"placement: distinct snodes, primary first, full"
    ~count:200
    QCheck.(triple (int_range 1 24) (int_range 1 5) small_int)
    (fun (n, rfactor, salt) ->
      let rng = Rng.of_int salt in
      let primary = Rng.int rng n in
      let group_snodes =
        List.init (1 + Rng.int rng n) (fun _ -> Rng.int rng n)
      in
      let reps = Placement.replicas ~rfactor ~n ~primary ~group_snodes in
      if List.hd reps <> primary then QCheck.Test.fail_reportf "primary not first";
      if List.length reps <> min rfactor n then
        QCheck.Test.fail_reportf "wrong cardinality %d" (List.length reps);
      if List.length (List.sort_uniq compare reps) <> List.length reps then
        QCheck.Test.fail_reportf "duplicate snode";
      true)

let test_placement_prefers_other_groups () =
  (* Plenty of snodes outside the owner group: every backup must come from
     outside it (crash-domain diversity, the cluster model's point). *)
  let reps =
    Placement.replicas ~rfactor:3 ~n:10 ~primary:2 ~group_snodes:[ 2; 3; 4 ]
  in
  check Alcotest.(list int) "backups skip the group" [ 2; 5; 6 ] reps;
  (* Group covers the whole cluster: backfill keeps ring order. *)
  let reps =
    Placement.replicas ~rfactor:3 ~n:3 ~primary:1 ~group_snodes:[ 0; 1; 2 ]
  in
  check Alcotest.(list int) "backfill within the group" [ 1; 2; 0 ] reps

let test_placement_successor () =
  check
    Alcotest.(option int)
    "skips avoided" (Some 3)
    (Placement.successor ~n:4 ~avoid:[ 0; 1; 2 ] ~start:1);
  check
    Alcotest.(option int)
    "none when saturated" None
    (Placement.successor ~n:3 ~avoid:[ 0; 1; 2 ] ~start:0)

(* --- Versioned cells --- *)

let prop_lww_total_order =
  QCheck.Test.make ~name:"versioned: LWW is a deterministic total order"
    ~count:200
    QCheck.(
      pair
        (pair (float_bound_exclusive 10.) small_nat)
        (pair (float_bound_exclusive 10.) small_nat))
    (fun ((ts1, o1), (ts2, o2)) ->
      let a = Versioned.cell ~value:"a" ~ts:ts1 ~origin:o1 () in
      let b = Versioned.cell ~value:"b" ~ts:ts2 ~origin:o2 () in
      let w1 = Versioned.merge ~mine:a ~theirs:b in
      let w2 = Versioned.merge ~mine:b ~theirs:a in
      (* Same winner from both sides unless the versions tie exactly (then
         each side keeps its incumbent — never reached by real traffic,
         where equal stamps imply the same write). *)
      if ts1 = ts2 && o1 = o2 then true
      else if w1.Versioned.value <> w2.Versioned.value then
        QCheck.Test.fail_reportf "merge not symmetric"
      else
        let newest = if ts1 > ts2 || (ts1 = ts2 && o1 > o2) then a else b in
        w1.Versioned.value = newest.Versioned.value)

(* --- Read-your-writes under quorum intersection --- *)

let prop_read_your_writes =
  (* R + W > rfactor and no faults: a put acknowledged anywhere must be
     visible to a subsequent get from ANY snode — across 100 random
     cluster shapes, quorum configurations and growth schedules. *)
  QCheck.Test.make ~name:"quorum: read-your-writes across 100 schedules"
    ~count:100 QCheck.small_int (fun salt ->
      let rng = Rng.of_int (salt * 7919) in
      let snodes = 2 + Rng.int rng 7 in
      let rfactor = 2 + Rng.int rng (min 3 snodes - 1) in
      (* All (R, W) with R + W > rfactor, picked at random. *)
      let quorums =
        List.concat_map
          (fun r ->
            List.filter_map
              (fun w -> if r + w > rfactor then Some (r, w) else None)
              (List.init rfactor (fun i -> i + 1)))
          (List.init rfactor (fun i -> i + 1))
      in
      let read_quorum, write_quorum =
        List.nth quorums (Rng.int rng (List.length quorums))
      in
      let rt =
        Runtime.create ~pmin:8
          ~approach:(Runtime.Local { vmin = 4 })
          ~rfactor ~read_quorum ~write_quorum ~snodes ~seed:salt ()
      in
      (* Random growth, drained so the replica maps are committed
         everywhere before the data ops (quorum reads are eventually
         consistent only while a migration is in flight). *)
      let vnodes = Rng.int rng 9 in
      for i = 1 to vnodes do
        Runtime.create_vnode rt
          ~id:(Vnode_id.make ~snode:(i mod snodes) ~vnode:(i / snodes))
          ()
      done;
      Runtime.run rt;
      let wrong = ref 0 and acked = ref 0 in
      for i = 0 to 19 do
        Runtime.put rt ~via:(Rng.int rng snodes)
          ~on_done:(fun () -> incr acked)
          ~key:(Printf.sprintf "k%d" i) ~value:(string_of_int i) ()
      done;
      Runtime.run rt;
      for i = 0 to 19 do
        Runtime.get rt ~via:(Rng.int rng snodes) ~key:(Printf.sprintf "k%d" i)
          (fun v -> if v <> Some (string_of_int i) then incr wrong)
      done;
      Runtime.run rt;
      if !acked <> 20 then QCheck.Test.fail_reportf "%d puts acked" !acked;
      if !wrong > 0 then QCheck.Test.fail_reportf "%d stale reads" !wrong;
      if Runtime.pending_operations rt <> 0 then
        QCheck.Test.fail_reportf "pending ops left";
      match Runtime.audit rt with
      | Ok () -> true
      | Error es -> QCheck.Test.fail_reportf "%s" (String.concat "\n" es))

(* --- Quorum basics --- *)

let test_quorum_validation () =
  let mk ~rfactor ~r ~w ~snodes =
    ignore
      (Runtime.create ~rfactor ~read_quorum:r ~write_quorum:w ~snodes ~seed:1
         ())
  in
  Alcotest.check_raises "R + W <= rfactor rejected"
    (Invalid_argument
       "Params.check_quorum: R + W must exceed rfactor (quorum intersection)")
    (fun () -> mk ~rfactor:3 ~r:1 ~w:2 ~snodes:4);
  Alcotest.check_raises "rfactor > snodes rejected"
    (Invalid_argument "Runtime.create: rfactor exceeds the snode count")
    (fun () -> mk ~rfactor:3 ~r:2 ~w:2 ~snodes:2)

let test_quorum_overwrite_lww () =
  (* Sequential overwrites from different coordinators resolve to the
     latest write everywhere. *)
  let rt =
    Runtime.create ~rfactor:3 ~read_quorum:2 ~write_quorum:2 ~snodes:5 ~seed:3
      ()
  in
  Runtime.put rt ~via:1 ~key:"k" ~value:"first" ();
  Runtime.run rt;
  Runtime.put rt ~via:4 ~key:"k" ~value:"second" ();
  Runtime.run rt;
  let seen = ref [] in
  for via = 0 to 4 do
    Runtime.get rt ~via ~key:"k" (fun v -> seen := v :: !seen)
  done;
  Runtime.run rt;
  check
    Alcotest.(list (option string))
    "every snode reads the overwrite"
    [ Some "second"; Some "second"; Some "second"; Some "second"; Some "second" ]
    !seen;
  check Alcotest.(option string) "oracle agrees" (Some "second")
    (Runtime.peek rt ~key:"k")

let test_same_tick_overwrite () =
  (* Two puts to one key issued through one coordinator in the same
     engine tick: [Engine.now] is identical for both stamps, so only the
     version's sequence component orders them. The second write must win
     everywhere — an exact-tie LWW merge would silently drop it while
     still acknowledging it. *)
  let rt =
    Runtime.create ~rfactor:3 ~read_quorum:2 ~write_quorum:2 ~snodes:5
      ~seed:11 ()
  in
  Runtime.put rt ~via:1 ~key:"k" ~value:"first" ();
  Runtime.put rt ~via:1 ~key:"k" ~value:"second" ();
  Runtime.run rt;
  let seen = ref [] in
  for via = 0 to 4 do
    Runtime.get rt ~via ~key:"k" (fun v -> seen := v :: !seen)
  done;
  Runtime.run rt;
  check
    Alcotest.(list (option string))
    "same-tick overwrite visible from every snode"
    [ Some "second"; Some "second"; Some "second"; Some "second";
      Some "second" ]
    !seen;
  check Alcotest.(option string) "oracle agrees" (Some "second")
    (Runtime.peek rt ~key:"k")

let test_dead_via_rerouted () =
  (* The entry snode is down: a replicated operation must re-route to a
     live coordinator and still meet its quorum, not demote to a parked
     single-copy write that voids the R+W intersection guarantee. *)
  let rt =
    Runtime.create ~rfactor:3 ~read_quorum:2 ~write_quorum:2 ~snodes:5 ~seed:7
      ()
  in
  Runtime.crash_snode rt 3;
  let acked = ref false in
  Runtime.put rt ~via:3
    ~on_done:(fun () -> acked := true)
    ~key:"k" ~value:"v" ();
  let e = Runtime.engine rt in
  Runtime.run ~until:(Engine.now e +. 0.5) rt;
  check Alcotest.bool "write acked through a live coordinator" true !acked;
  let got = ref None in
  Runtime.get rt ~via:3 ~key:"k" (fun v -> got := v);
  Runtime.run ~until:(Engine.now e +. 0.5) rt;
  check Alcotest.(option string) "read rerouted too" (Some "v") !got

let test_unmeetable_quorum_fails () =
  (* rfactor = snodes and two of three replicas dead with no recovery
     scheduled: W = 2 can never be met and no ring successor exists to
     hint to. The write must settle as failed — callback dropped, no
     pending entry — instead of stranding its quorum state forever. *)
  let rt =
    Runtime.create ~rfactor:3 ~read_quorum:2 ~write_quorum:2 ~snodes:3
      ~seed:13 ()
  in
  Runtime.crash_snode rt 1;
  Runtime.crash_snode rt 2;
  let acked = ref false in
  Runtime.put rt ~via:0
    ~on_done:(fun () -> acked := true)
    ~key:"k" ~value:"v" ();
  let e = Runtime.engine rt in
  Runtime.run ~until:(Engine.now e +. 5.0) rt;
  check Alcotest.bool "write not acknowledged" false !acked;
  check Alcotest.int "operation settled, not stranded" 0
    (Runtime.pending_operations rt)

(* --- Hinted handoff --- *)

let test_hinted_handoff () =
  (* A replica crashes; writes still reach W via ring-successor fallbacks
     holding hints, and the hints drain when the replica restarts. *)
  let faults = Runtime.Fault.create ~seed:9 () in
  let rt =
    Runtime.create ~faults ~rfactor:3 ~read_quorum:2 ~write_quorum:2 ~snodes:5
      ~seed:9 ()
  in
  (* Bootstrap placement: every partition lives on snodes [0; 1; 2]. *)
  Runtime.crash_snode rt 2;
  let acked = ref 0 in
  for i = 0 to 9 do
    Runtime.put rt ~via:0
      ~on_done:(fun () -> incr acked)
      ~key:(Printf.sprintf "h%d" i) ~value:(string_of_int i) ()
  done;
  let e = Runtime.engine rt in
  Runtime.run ~until:(Engine.now e +. 0.5) rt;
  check Alcotest.int "writes complete despite the dead replica" 10 !acked;
  let s = Runtime.repl_stats rt in
  check Alcotest.bool "hints parked" true (s.Runtime.hints_stored >= 10);
  Runtime.restart_snode rt 2;
  Runtime.run rt;
  let s = Runtime.repl_stats rt in
  check Alcotest.int "every hint drained" s.Runtime.hints_stored
    s.Runtime.hints_flushed;
  (* The restarted replica now serves reads: ask it directly with R=2. *)
  let wrong = ref 0 in
  for i = 0 to 9 do
    Runtime.get rt ~via:2 ~key:(Printf.sprintf "h%d" i) (fun v ->
        if v <> Some (string_of_int i) then incr wrong)
  done;
  Runtime.run rt;
  check Alcotest.int "no stale reads after recovery" 0 !wrong;
  audit_ok rt "hinted handoff"

let test_hint_same_key_twice () =
  (* Two overwrites of one key while a replica is down share the single
     (target, key) hint binding: stored/flushed counters stay matched and
     the freshest value survives the drain. *)
  let rt =
    Runtime.create ~rfactor:3 ~read_quorum:2 ~write_quorum:2 ~snodes:5
      ~seed:21 ()
  in
  Runtime.crash_snode rt 2;
  let e = Runtime.engine rt in
  Runtime.put rt ~via:0 ~key:"k" ~value:"first" ();
  Runtime.run ~until:(Engine.now e +. 0.2) rt;
  Runtime.put rt ~via:0 ~key:"k" ~value:"second" ();
  Runtime.run ~until:(Engine.now e +. 0.4) rt;
  let s = Runtime.repl_stats rt in
  check Alcotest.int "one hint binding for the twice-hinted key" 1
    s.Runtime.hints_stored;
  Runtime.restart_snode rt 2;
  Runtime.run rt;
  let s = Runtime.repl_stats rt in
  check Alcotest.int "stored and flushed match" s.Runtime.hints_stored
    s.Runtime.hints_flushed;
  let got = ref None in
  Runtime.get rt ~via:2 ~key:"k" (fun v -> got := v);
  Runtime.run rt;
  check Alcotest.(option string) "freshest value survives the drain"
    (Some "second") !got

(* --- Read repair --- *)

let test_read_repair_fires () =
  (* A replica that rejoins stale and answers a read before the
     restart-driven hint flush or digest sync can reach it (one network
     hop vs two) is caught on the read path: the coordinator pushes the
     LWW winner and counts a read repair. *)
  let rt =
    Runtime.create ~rfactor:3 ~read_quorum:3 ~write_quorum:2 ~snodes:5
      ~seed:29 ()
  in
  Runtime.crash_snode rt 2;
  let e = Runtime.engine rt in
  Runtime.put rt ~via:0 ~key:"k" ~value:"fresh" ();
  Runtime.run ~until:(Engine.now e +. 0.2) rt;
  Runtime.restart_snode rt 2;
  let got = ref None in
  Runtime.get rt ~via:0 ~key:"k" (fun v -> got := v);
  Runtime.run rt;
  check Alcotest.(option string) "read returns the winner" (Some "fresh")
    !got;
  let s = Runtime.repl_stats rt in
  check Alcotest.bool "read repair fired" true (s.Runtime.read_repairs >= 1)

(* --- Anti-entropy --- *)

let test_anti_entropy_after_growth () =
  (* Writes interleaved with partition migrations leave replica-table
     cells stranded on snodes that left a replica set; anti-entropy
     routes them home and re-converges every replica. *)
  let rt =
    Runtime.create ~pmin:8
      ~approach:(Runtime.Local { vmin = 4 })
      ~rfactor:3 ~read_quorum:2 ~write_quorum:2 ~snodes:6 ~seed:17 ()
  in
  for i = 0 to 49 do
    Runtime.put rt ~via:(i mod 6) ~key:(Printf.sprintf "a%d" i)
      ~value:(string_of_int i) ()
  done;
  for i = 1 to 11 do
    Runtime.create_vnode rt ~id:(Vnode_id.make ~snode:(i mod 6) ~vnode:(i / 6)) ()
  done;
  Runtime.run rt;
  Runtime.anti_entropy rt;
  Runtime.run rt;
  Runtime.anti_entropy rt;
  Runtime.run rt;
  let wrong = ref 0 in
  for i = 0 to 49 do
    Runtime.get rt ~via:((i + 3) mod 6) ~key:(Printf.sprintf "a%d" i) (fun v ->
        if v <> Some (string_of_int i) then incr wrong)
  done;
  Runtime.run rt;
  check Alcotest.int "all keys consistent after migrations" 0 !wrong;
  check Alcotest.int "no pending ops" 0 (Runtime.pending_operations rt);
  audit_ok rt "anti-entropy after growth"

let test_anti_entropy_noop_when_converged () =
  (* On a converged cluster a second round must not move a single cell:
     digests agree everywhere. *)
  let rt =
    Runtime.create ~rfactor:3 ~read_quorum:2 ~write_quorum:2 ~snodes:4 ~seed:5
      ()
  in
  for i = 0 to 19 do
    Runtime.put rt ~key:(Printf.sprintf "n%d" i) ~value:(string_of_int i) ()
  done;
  Runtime.run rt;
  Runtime.anti_entropy rt;
  Runtime.run rt;
  let before = Runtime.repl_stats rt in
  Runtime.anti_entropy rt;
  Runtime.run rt;
  let after = Runtime.repl_stats rt in
  check Alcotest.int "no cells synced on a converged cluster"
    before.Runtime.sync_cells after.Runtime.sync_cells;
  check Alcotest.int "no orphans on a converged cluster"
    before.Runtime.orphans after.Runtime.orphans

(* --- Determinism pin over the replicated protocol --- *)

let traced_replicated_run () =
  let buf = Buffer.create 4096 in
  let trace = Trace.to_buffer Jsonl buf in
  let reg = Registry.create () in
  let faults = Runtime.Fault.create ~drop:0.03 ~jitter:1e-4 ~seed:404 () in
  let rt =
    Runtime.create ~pmin:8
      ~approach:(Runtime.Local { vmin = 4 })
      ~faults ~rfactor:3 ~read_quorum:2 ~write_quorum:2 ~metrics:reg ~trace
      ~snodes:6 ~seed:404 ()
  in
  for i = 1 to 11 do
    Runtime.create_vnode rt ~id:(Vnode_id.make ~snode:(i mod 6) ~vnode:(i / 6)) ()
  done;
  Runtime.run rt;
  Runtime.crash_snode rt 1;
  for i = 0 to 49 do
    Runtime.put rt ~via:(i mod 6) ~key:(Printf.sprintf "d%d" i)
      ~value:(string_of_int i) ()
  done;
  let e = Runtime.engine rt in
  Runtime.run ~until:(Engine.now e +. 0.3) rt;
  Runtime.restart_snode rt 1;
  Runtime.run rt;
  Runtime.anti_entropy rt;
  Runtime.run rt;
  for i = 0 to 49 do
    Runtime.get rt ~via:(i mod 6) ~key:(Printf.sprintf "d%d" i) (fun _ -> ())
  done;
  Runtime.run rt;
  Runtime.record_metrics rt reg;
  Trace.close trace;
  (Buffer.contents buf, Registry.csv_rows reg)

let test_replicated_trace_deterministic () =
  let trace1, rows1 = traced_replicated_run () in
  let trace2, rows2 = traced_replicated_run () in
  check Alcotest.bool "trace is non-trivial" true (String.length trace1 > 1000);
  check Alcotest.string "replicated traces byte-identical" trace1 trace2;
  check Alcotest.(list (list string)) "metrics identical" rows1 rows2

let suite =
  [
    QCheck_alcotest.to_alcotest prop_placement;
    Alcotest.test_case "placement: crash-domain diversity" `Quick
      test_placement_prefers_other_groups;
    Alcotest.test_case "placement: ring successor" `Quick
      test_placement_successor;
    QCheck_alcotest.to_alcotest prop_lww_total_order;
    QCheck_alcotest.to_alcotest prop_read_your_writes;
    Alcotest.test_case "quorum: configuration validated" `Quick
      test_quorum_validation;
    Alcotest.test_case "quorum: overwrite resolves by LWW" `Quick
      test_quorum_overwrite_lww;
    Alcotest.test_case "quorum: same-tick overwrite not lost" `Quick
      test_same_tick_overwrite;
    Alcotest.test_case "quorum: dead entry snode re-routed" `Quick
      test_dead_via_rerouted;
    Alcotest.test_case "quorum: unmeetable W settles as failure" `Quick
      test_unmeetable_quorum_fails;
    Alcotest.test_case "hinted handoff across a crash" `Quick
      test_hinted_handoff;
    Alcotest.test_case "hinted handoff: same key twice" `Quick
      test_hint_same_key_twice;
    Alcotest.test_case "read repair catches a stale rejoin" `Quick
      test_read_repair_fires;
    Alcotest.test_case "anti-entropy repairs migrations" `Quick
      test_anti_entropy_after_growth;
    Alcotest.test_case "anti-entropy idle when converged" `Quick
      test_anti_entropy_noop_when_converged;
    Alcotest.test_case "replicated trace deterministic" `Quick
      test_replicated_trace_deterministic;
  ]
