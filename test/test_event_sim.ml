(* Tests for Dht_event_sim: Heap, Engine, Network. *)

module Heap = Dht_event_sim.Heap
module Engine = Dht_event_sim.Engine
module Network = Dht_event_sim.Network
module Fault = Dht_event_sim.Fault
module Rng = Dht_prng.Rng

let check = Alcotest.check

(* --- Heap --- *)

let test_heap_orders_random_input () =
  let rng = Rng.of_int 1 in
  let h = Heap.create ~dummy:0 () in
  for i = 0 to 499 do
    Heap.push h ~time:(Rng.float rng) ~seq:i i
  done;
  check Alcotest.int "length" 500 (Heap.length h);
  let last = ref neg_infinity in
  let popped = ref 0 in
  let rec drain () =
    match Heap.pop h with
    | None -> ()
    | Some (t, _, _) ->
        check Alcotest.bool "non-decreasing" true (t >= !last);
        last := t;
        incr popped;
        drain ()
  in
  drain ();
  check Alcotest.int "all popped" 500 !popped;
  check Alcotest.bool "empty" true (Heap.is_empty h)

let test_heap_fifo_at_equal_times () =
  let h = Heap.create ~dummy:0 () in
  for i = 0 to 9 do
    Heap.push h ~time:1. ~seq:i i
  done;
  for i = 0 to 9 do
    match Heap.pop h with
    | Some (_, _, v) -> check Alcotest.int "fifo" i v
    | None -> Alcotest.fail "heap drained early"
  done

let test_heap_peek () =
  let h = Heap.create ~dummy:() () in
  check Alcotest.bool "empty peek" true (Heap.peek_time h = None);
  Heap.push h ~time:3. ~seq:0 ();
  Heap.push h ~time:1. ~seq:1 ();
  check (Alcotest.option (Alcotest.float 0.)) "min time" (Some 1.) (Heap.peek_time h)

(* --- Engine --- *)

let test_engine_dispatch_order () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:2. (fun () -> log := 2 :: !log);
  Engine.schedule e ~delay:1. (fun () -> log := 1 :: !log);
  Engine.schedule e ~delay:3. (fun () -> log := 3 :: !log);
  Engine.run e;
  check Alcotest.(list int) "time order" [ 1; 2; 3 ] (List.rev !log);
  check (Alcotest.float 0.) "clock at last event" 3. (Engine.now e)

let test_engine_nested_scheduling () =
  let e = Engine.create () in
  let fired = ref [] in
  Engine.schedule e ~delay:1. (fun () ->
      fired := ("a", Engine.now e) :: !fired;
      Engine.schedule e ~delay:0.5 (fun () ->
          fired := ("b", Engine.now e) :: !fired));
  Engine.run e;
  match List.rev !fired with
  | [ ("a", ta); ("b", tb) ] ->
      check (Alcotest.float 1e-12) "a at 1" 1. ta;
      check (Alcotest.float 1e-12) "b at 1.5" 1.5 tb
  | _ -> Alcotest.fail "wrong firing sequence"

let test_engine_validation () =
  let e = Engine.create () in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Engine.schedule: negative or non-finite delay") (fun () ->
      Engine.schedule e ~delay:(-1.) (fun () -> ()));
  Engine.schedule e ~delay:5. (fun () -> ());
  Engine.run e;
  Alcotest.check_raises "past absolute time" (Invalid_argument "Engine.at: time in the past")
    (fun () -> Engine.at e ~time:1. (fun () -> ()))

let test_engine_run_until () =
  let e = Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    Engine.schedule e ~delay:(float_of_int i) (fun () -> incr count)
  done;
  Engine.run ~until:5.5 e;
  check Alcotest.int "only first five" 5 !count;
  check Alcotest.int "rest pending" 5 (Engine.pending e);
  Engine.run e;
  check Alcotest.int "drained" 10 !count

let test_engine_max_events () =
  let e = Engine.create () in
  for i = 1 to 10 do
    Engine.schedule e ~delay:(float_of_int i) (fun () -> ())
  done;
  Engine.run ~max_events:3 e;
  check Alcotest.int "seven left" 7 (Engine.pending e)

let test_engine_step_empty () =
  let e = Engine.create () in
  check Alcotest.bool "step on empty" false (Engine.step e)

(* --- Network --- *)

let test_network_latency_model () =
  let e = Engine.create () in
  let link = Network.link ~base_latency:1e-3 ~byte_time:1e-6 in
  let net = Network.create ~loopback:5e-6 e link in
  check (Alcotest.float 1e-12) "base + bytes" (1e-3 +. 1e-3)
    (Network.transit_time net ~src:0 ~dst:1 ~bytes:1000);
  check (Alcotest.float 1e-12) "loopback" 5e-6
    (Network.transit_time net ~src:3 ~dst:3 ~bytes:1_000_000);
  Alcotest.check_raises "negative bytes"
    (Invalid_argument "Network.transit_time: negative size") (fun () ->
      ignore (Network.transit_time net ~src:0 ~dst:1 ~bytes:(-1)))

let test_network_counters () =
  let e = Engine.create () in
  let net = Network.create e Network.gigabit in
  let delivered = ref 0 in
  Network.send net ~src:0 ~dst:1 ~bytes:100 (fun () -> incr delivered);
  Network.send net ~src:2 ~dst:2 ~bytes:50 (fun () -> incr delivered);
  Engine.run e;
  check Alcotest.int "both delivered" 2 !delivered;
  check Alcotest.int "one remote message" 1 (Network.messages net);
  check Alcotest.int "remote bytes" 100 (Network.bytes_sent net);
  check Alcotest.int "one local delivery" 1 (Network.local_deliveries net);
  Network.reset_counters net;
  check Alcotest.int "reset" 0 (Network.messages net)

let test_network_delivery_order () =
  let e = Engine.create () in
  let link = Network.link ~base_latency:0. ~byte_time:1e-6 in
  let net = Network.create e link in
  let log = ref [] in
  (* Bigger message sent first arrives later. *)
  Network.send net ~src:0 ~dst:1 ~bytes:1000 (fun () -> log := "big" :: !log);
  Network.send net ~src:0 ~dst:1 ~bytes:10 (fun () -> log := "small" :: !log);
  Engine.run e;
  check Alcotest.(list string) "size-dependent order" [ "small"; "big" ]
    (List.rev !log)

let test_link_validation () =
  Alcotest.check_raises "negative latency" (Invalid_argument "Network.link: negative parameter")
    (fun () -> ignore (Network.link ~base_latency:(-1.) ~byte_time:0.))

(* --- Cancellable timers --- *)

let test_engine_cancellable () =
  let e = Engine.create () in
  let fired = ref [] in
  let h1 = Engine.schedule_cancellable e ~delay:1. (fun () -> fired := 1 :: !fired) in
  let h2 = Engine.schedule_cancellable e ~delay:2. (fun () -> fired := 2 :: !fired) in
  check Alcotest.bool "h1 pending" true (Engine.is_pending h1);
  Engine.cancel h2;
  check Alcotest.bool "h2 cancelled" false (Engine.is_pending h2);
  (* Lazy deletion: the queue entry stays and is dispatched as a no-op. *)
  check Alcotest.int "entries remain" 2 (Engine.pending e);
  Engine.run e;
  check Alcotest.(list int) "only h1 fired" [ 1 ] (List.rev !fired);
  check Alcotest.bool "h1 spent" false (Engine.is_pending h1);
  check (Alcotest.float 0.) "clock crossed the cancelled slot" 2. (Engine.now e);
  (* Cancelling after firing (or twice) is a no-op. *)
  Engine.cancel h1;
  Engine.cancel h2

(* --- Fault plan --- *)

let test_fault_validation () =
  Alcotest.check_raises "drop out of range"
    (Invalid_argument "Fault.drop: probability outside [0, 1]") (fun () ->
      ignore (Fault.create ~drop:1.5 ~seed:1 ()));
  Alcotest.check_raises "negative jitter"
    (Invalid_argument "Fault.jitter: negative or non-finite") (fun () ->
      ignore (Fault.create ~jitter:(-1.) ~seed:1 ()));
  Alcotest.check_raises "bad crash window"
    (Invalid_argument "Fault.create: crash plan needs 0 <= at < back_at")
    (fun () -> ignore (Fault.create ~crashes:[ (0, 2., 1.) ] ~seed:1 ()))

let test_fault_drop_and_duplicate_rates () =
  (* Deterministic given the seed; rates roughly honoured over many rolls. *)
  let f = Fault.create ~drop:0.2 ~duplicate:0.1 ~seed:7 () in
  for _ = 1 to 1000 do
    ignore (Fault.cut f ~src:0 ~dst:1);
    ignore (Fault.duplicate f)
  done;
  let d = Fault.drops f and dup = Fault.duplicates f in
  check Alcotest.bool "drops near 200" true (d > 120 && d < 280);
  check Alcotest.bool "dups near 100" true (dup > 50 && dup < 150);
  let f' = Fault.create ~drop:0.2 ~duplicate:0.1 ~seed:7 () in
  for _ = 1 to 1000 do
    ignore (Fault.cut f' ~src:0 ~dst:1);
    ignore (Fault.duplicate f')
  done;
  check Alcotest.int "same seed, same drops" d (Fault.drops f');
  Fault.set_drop f 0.;
  Fault.set_duplicate f 0.;
  for _ = 1 to 100 do
    ignore (Fault.cut f ~src:0 ~dst:1);
    ignore (Fault.duplicate f)
  done;
  check Alcotest.int "faults ceased: drops frozen" d (Fault.drops f);
  check Alcotest.int "faults ceased: dups frozen" dup (Fault.duplicates f)

let test_fault_sever_and_down () =
  let f = Fault.create ~seed:3 () in
  check Alcotest.bool "link up" false (Fault.severed f 1 2);
  Fault.sever f 1 2;
  check Alcotest.bool "severed" true (Fault.severed f 1 2);
  check Alcotest.bool "symmetric" true (Fault.severed f 2 1);
  check Alcotest.bool "cut on severed link" true (Fault.cut f ~src:2 ~dst:1);
  Fault.heal f 2 1;
  check Alcotest.bool "healed" false (Fault.severed f 1 2);
  check Alcotest.bool "no cut after heal" false (Fault.cut f ~src:1 ~dst:2);
  Fault.set_down f 4;
  check Alcotest.bool "down" true (Fault.is_down f 4);
  check Alcotest.bool "absorbed" true (Fault.absorb f ~dst:4);
  check Alcotest.bool "others unaffected" false (Fault.absorb f ~dst:5);
  Fault.set_up f 4;
  check Alcotest.bool "back up" false (Fault.absorb f ~dst:4)

let test_fault_jitter_bounds () =
  let f = Fault.create ~jitter:1e-3 ~seed:11 () in
  for _ = 1 to 500 do
    let d = Fault.delay_noise f in
    if d < 0. || d >= 1e-3 then Alcotest.fail "jitter outside [0, 1e-3)"
  done;
  Fault.set_jitter f 0.;
  check (Alcotest.float 0.) "no jitter" 0. (Fault.delay_noise f)

let test_network_applies_faults () =
  let e = Engine.create () in
  (* drop = 1: every remote send vanishes, loopback is exempt. *)
  let f = Fault.create ~drop:1. ~seed:5 () in
  let net = Network.create ~faults:f e Network.gigabit in
  let delivered = ref 0 in
  Network.send net ~src:0 ~dst:1 ~bytes:10 (fun () -> incr delivered);
  Network.send net ~src:2 ~dst:2 ~bytes:10 (fun () -> incr delivered);
  Engine.run e;
  check Alcotest.int "only loopback arrives" 1 !delivered;
  check Alcotest.int "drop counted" 1 (Fault.drops f);
  check Alcotest.int "send still counted" 1 (Network.messages net);
  (* duplicate = 1: every remote send arrives twice. *)
  Fault.set_drop f 0.;
  Fault.set_duplicate f 1.;
  delivered := 0;
  Network.send net ~src:0 ~dst:1 ~bytes:10 (fun () -> incr delivered);
  Engine.run e;
  check Alcotest.int "delivered twice" 2 !delivered;
  check Alcotest.int "duplicate counted" 1 (Fault.duplicates f);
  (* Down destination absorbs at delivery time. *)
  Fault.set_duplicate f 0.;
  Fault.set_down f 1;
  delivered := 0;
  Network.send net ~src:0 ~dst:1 ~bytes:10 (fun () -> incr delivered);
  Engine.run e;
  check Alcotest.int "absorbed by down node" 0 !delivered;
  Fault.set_up f 1;
  Network.send net ~src:0 ~dst:1 ~bytes:10 (fun () -> incr delivered);
  Engine.run e;
  check Alcotest.int "delivered after restart" 1 !delivered

let test_fault_crash_overlap () =
  Alcotest.check_raises "overlapping windows, same snode"
    (Invalid_argument
       "Fault.create: overlapping crash windows for snode 0 ([1, 2) and [1.5, \
        3))") (fun () ->
      ignore (Fault.create ~crashes:[ (0, 1., 2.); (0, 1.5, 3.) ] ~seed:1 ()));
  Alcotest.check_raises "duplicate window"
    (Invalid_argument
       "Fault.create: overlapping crash windows for snode 2 ([1, 2) and [1, \
        2))") (fun () ->
      ignore (Fault.create ~crashes:[ (2, 1., 2.); (2, 1., 2.) ] ~seed:1 ()));
  (* Half-open windows: one may start exactly where another ends. *)
  let f = Fault.create ~crashes:[ (0, 1., 2.); (0, 2., 3.) ] ~seed:1 () in
  check Alcotest.int "back-to-back windows accepted" 2
    (List.length (Fault.crash_plan f));
  (* Same instants on different snodes never conflict. *)
  let f = Fault.create ~crashes:[ (0, 1., 2.); (1, 1., 2.) ] ~seed:1 () in
  check Alcotest.int "distinct snodes accepted" 2
    (List.length (Fault.crash_plan f));
  Alcotest.check_raises "negative snode"
    (Invalid_argument "Fault.create: negative snode in crash plan") (fun () ->
      ignore (Fault.create ~crashes:[ (-1, 1., 2.) ] ~seed:1 ()))

let test_fault_heal_noop () =
  let f = Fault.create ~seed:9 () in
  (* Healing a link that was never severed changes nothing and never raises:
     recovery sweeps heal whole neighbourhoods blindly. *)
  Fault.heal f 1 2;
  check Alcotest.bool "still unsevered" false (Fault.severed f 1 2);
  Fault.heal_oneway f ~src:1 ~dst:2;
  check Alcotest.bool "still unsevered oneway" false
    (Fault.severed_oneway f ~src:1 ~dst:2);
  check Alcotest.bool "no phantom cut" false (Fault.cut f ~src:1 ~dst:2);
  check Alcotest.int "no drops recorded" 0 (Fault.drops f)

let test_fault_oneway () =
  let f = Fault.create ~seed:13 () in
  Fault.sever_oneway f ~src:1 ~dst:2;
  check Alcotest.bool "forward severed" true (Fault.severed_oneway f ~src:1 ~dst:2);
  check Alcotest.bool "reverse open" false (Fault.severed_oneway f ~src:2 ~dst:1);
  check Alcotest.bool "symmetric view unaffected" false (Fault.severed f 1 2);
  check Alcotest.bool "forward cut" true (Fault.cut f ~src:1 ~dst:2);
  check Alcotest.bool "reverse passes" false (Fault.cut f ~src:2 ~dst:1);
  check Alcotest.int "one drop" 1 (Fault.drops f);
  Fault.heal_oneway f ~src:1 ~dst:2;
  check Alcotest.bool "healed" false (Fault.severed_oneway f ~src:1 ~dst:2);
  check Alcotest.bool "forward passes after heal" false (Fault.cut f ~src:1 ~dst:2)

let test_fault_slow () =
  let f = Fault.create ~seed:17 () in
  check (Alcotest.float 0.) "default factor" 1. (Fault.slow_factor f ~dst:3);
  check Alcotest.bool "not slow" false (Fault.is_slow f 3);
  Fault.set_slow f 3 10.;
  check (Alcotest.float 0.) "factor set" 10. (Fault.slow_factor f ~dst:3);
  check Alcotest.bool "slow" true (Fault.is_slow f 3);
  check (Alcotest.float 0.) "others unaffected" 1. (Fault.slow_factor f ~dst:4);
  Fault.clear_slow f 3;
  check (Alcotest.float 0.) "cleared" 1. (Fault.slow_factor f ~dst:3);
  Alcotest.check_raises "factor below one"
    (Invalid_argument "Fault.set_slow: factor must be finite and >= 1")
    (fun () -> Fault.set_slow f 3 0.5);
  Alcotest.check_raises "negative snode"
    (Invalid_argument "Fault.set_slow: negative snode") (fun () ->
      Fault.set_slow f (-1) 2.)

let test_network_slow_destination () =
  let e = Engine.create () in
  let f = Fault.create ~seed:21 () in
  let link = Network.link ~base_latency:1e-3 ~byte_time:0. in
  let net = Network.create ~faults:f e link in
  Fault.set_slow f 1 10.;
  let arrived = ref nan in
  Network.send net ~src:0 ~dst:1 ~bytes:10 (fun () -> arrived := Engine.now e);
  Engine.run e;
  check (Alcotest.float 1e-12) "delivery stretched by the factor" 1e-2 !arrived;
  (* A healthy destination still sees the nominal link delay. *)
  let arrived' = ref nan in
  Network.send net ~src:0 ~dst:2 ~bytes:10 (fun () -> arrived' := Engine.now e);
  Engine.run e;
  check (Alcotest.float 1e-12) "healthy peer at nominal latency" (1e-2 +. 1e-3)
    !arrived';
  Fault.clear_slow f 1;
  let arrived'' = ref nan in
  Network.send net ~src:0 ~dst:1 ~bytes:10 (fun () -> arrived'' := Engine.now e);
  Engine.run e;
  check (Alcotest.float 1e-12) "back to nominal after clear"
    (1e-2 +. 1e-3 +. 1e-3) !arrived''

let test_network_ingress_bound () =
  let e = Engine.create () in
  let net = Network.create e Network.gigabit in
  Alcotest.check_raises "negative limit"
    (Invalid_argument "Network.set_ingress_limit: negative limit") (fun () ->
      Network.set_ingress_limit net (-1));
  Network.set_ingress_limit net 2;
  let delivered = ref 0 in
  for _ = 1 to 4 do
    Network.send net ~src:0 ~dst:1 ~bytes:10 (fun () -> incr delivered)
  done;
  (* Two deliveries occupy the queue; the other two were dropped at the
     door before any delivery was scheduled. *)
  check Alcotest.int "queue at the bound" 2 (Network.ingress_depth net ~dst:1);
  check Alcotest.int "two refused" 2 (Network.ingress_overflows net);
  (* Loopback is exempt from the bound even when the queue is full. *)
  Network.send net ~src:1 ~dst:1 ~bytes:10 (fun () -> incr delivered);
  Engine.run e;
  check Alcotest.int "admitted plus loopback land" 3 !delivered;
  check Alcotest.int "queue drained" 0 (Network.ingress_depth net ~dst:1);
  check Alcotest.int "high water at the bound" 2
    (Network.ingress_high_water net ~dst:1);
  check Alcotest.int "global high water" 2 (Network.max_ingress_high_water net);
  check Alcotest.int "other destinations untouched" 0
    (Network.ingress_high_water net ~dst:2);
  (* reset_counters rebases high-water marks to the (drained) depth. *)
  Network.reset_counters net;
  check Alcotest.int "high water rebased" 0
    (Network.ingress_high_water net ~dst:1);
  check Alcotest.int "overflows zeroed" 0 (Network.ingress_overflows net);
  (* Limit 0 restores the historical unbounded behaviour. *)
  Network.set_ingress_limit net 0;
  delivered := 0;
  for _ = 1 to 8 do
    Network.send net ~src:0 ~dst:1 ~bytes:10 (fun () -> incr delivered)
  done;
  Engine.run e;
  check Alcotest.int "unbounded again" 8 !delivered;
  check Alcotest.int "no overflows when unbounded" 0
    (Network.ingress_overflows net)

let suite =
  [
    Alcotest.test_case "heap orders random input" `Quick
      test_heap_orders_random_input;
    Alcotest.test_case "heap FIFO at equal times" `Quick
      test_heap_fifo_at_equal_times;
    Alcotest.test_case "heap peek" `Quick test_heap_peek;
    Alcotest.test_case "engine dispatch order" `Quick test_engine_dispatch_order;
    Alcotest.test_case "engine nested scheduling" `Quick
      test_engine_nested_scheduling;
    Alcotest.test_case "engine validation" `Quick test_engine_validation;
    Alcotest.test_case "engine run until" `Quick test_engine_run_until;
    Alcotest.test_case "engine max events" `Quick test_engine_max_events;
    Alcotest.test_case "engine step on empty" `Quick test_engine_step_empty;
    Alcotest.test_case "network latency model" `Quick test_network_latency_model;
    Alcotest.test_case "network counters" `Quick test_network_counters;
    Alcotest.test_case "network delivery order" `Quick
      test_network_delivery_order;
    Alcotest.test_case "link validation" `Quick test_link_validation;
    Alcotest.test_case "engine cancellable timers" `Quick
      test_engine_cancellable;
    Alcotest.test_case "fault validation" `Quick test_fault_validation;
    Alcotest.test_case "fault drop/duplicate rates" `Quick
      test_fault_drop_and_duplicate_rates;
    Alcotest.test_case "fault sever and down-set" `Quick
      test_fault_sever_and_down;
    Alcotest.test_case "fault jitter bounds" `Quick test_fault_jitter_bounds;
    Alcotest.test_case "network applies faults" `Quick
      test_network_applies_faults;
    Alcotest.test_case "fault crash-window overlap" `Quick
      test_fault_crash_overlap;
    Alcotest.test_case "fault heal is a no-op when unsevered" `Quick
      test_fault_heal_noop;
    Alcotest.test_case "fault one-way sever" `Quick test_fault_oneway;
    Alcotest.test_case "fault slow (gray failure) table" `Quick test_fault_slow;
    Alcotest.test_case "network slow destination" `Quick
      test_network_slow_destination;
    Alcotest.test_case "network bounded ingress" `Quick
      test_network_ingress_bound;
  ]
