(* The verification subsystem itself: schedule (de)serialization, the
   invariant battery over snapshots (including tamper detection), the
   per-commit audit hook, the 200+-seed join/leave sweep through the
   Local_dht oracle, and linger schedule-transparency. *)

open Dht_core
module Runtime = Dht_snode.Runtime
module Fault = Dht_event_sim.Fault
module Invariants = Dht_check.Invariants
module Schedule = Dht_check.Schedule
module Rng = Dht_prng.Rng

let vid ~snode ~vnode = Vnode_id.make ~snode ~vnode

(* ------------------------------------------------------------------ *)
(* Schedule round-trip and parse errors.                              *)

let sample_schedule =
  {
    Schedule.seed = 42;
    scenario = "kv";
    tweaks =
      [
        Schedule.Delay { site = 7; by = 0.0025 };
        Schedule.Drop { site = 19 };
        Schedule.Crash { site = 3; snode = 2; down = 0.05 };
        Schedule.Flush { site = 11 };
      ];
  }

let test_schedule_roundtrip () =
  let s = Schedule.to_string sample_schedule in
  (match Schedule.of_string s with
  | Ok back -> Alcotest.(check bool) "text round-trip" true (back = sample_schedule)
  | Error m -> Alcotest.failf "round-trip parse failed: %s" m);
  let path = Filename.temp_file "dht-sched" ".sched" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Schedule.save ~path sample_schedule;
      match Schedule.load ~path with
      | Ok back ->
          Alcotest.(check bool) "file round-trip" true (back = sample_schedule)
      | Error m -> Alcotest.failf "load failed: %s" m)

let test_schedule_parse_errors () =
  let bad s =
    match Schedule.of_string s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted malformed schedule %S" s
  in
  bad "wibble 3";
  bad "seed notanint";
  bad "delay 3";
  bad "crash 1 2";
  bad "drop many";
  (* Comments and blank lines are fine. *)
  match Schedule.of_string "# comment\n\nseed 5\ndrop 3\n" with
  | Ok t ->
      Alcotest.(check int) "seed" 5 t.Schedule.seed;
      Alcotest.(check int) "tweaks" 1 (Schedule.length t)
  | Error m -> Alcotest.failf "rejected valid schedule: %s" m

(* ------------------------------------------------------------------ *)
(* Satellite: 200+-seed join/leave sweep through the Local_dht oracle,
   auditing after every step. Schedules are int lists so the failing
   case shrinks to a minimal step sequence. *)

(* One step per int: biased three-to-one toward adds; removals pick an
   existing vnode and ignore legitimate refusals (Group_at_minimum &c). *)
let run_oracle_schedule ops =
  let rng = Rng.of_int 7 in
  let dht =
    Local_dht.create ~pmin:8 ~vmin:2 ~rng ~first:(vid ~snode:0 ~vnode:0) ()
  in
  let next = ref 1 in
  let present = ref [] in
  let step n =
    let n = abs n in
    if n mod 4 < 3 || !present = [] then begin
      let id = vid ~snode:(!next mod 8) ~vnode:(!next / 8) in
      incr next;
      ignore (Local_dht.add_vnode dht ~id);
      present := id :: !present
    end
    else begin
      let idx = n / 4 mod List.length !present in
      let id = List.nth !present idx in
      match Local_dht.remove_vnode dht ~id with
      | Ok () -> present := List.filter (fun i -> i <> id) !present
      | Error _ -> ()
    end
  in
  let violation = ref None in
  List.iteri
    (fun i n ->
      if !violation = None then begin
        step n;
        match Invariants.check_local dht with
        | [] -> ()
        | fs -> violation := Some (i, Invariants.to_strings fs)
      end)
    ops;
  !violation

let pp_ops ops = String.concat ";" (List.map string_of_int ops)

(* Greedy list shrinking: drop elements while the violation persists. *)
let shrink_ops ops =
  let failing o = run_oracle_schedule o <> None in
  let rec fixpoint o =
    let n = List.length o in
    let rec try_rm i =
      if i >= n then None
      else
        let cand = List.filteri (fun j _ -> j <> i) o in
        if failing cand then Some cand else try_rm (i + 1)
    in
    match try_rm 0 with Some o' -> fixpoint o' | None -> o
  in
  fixpoint ops

let test_oracle_sweep () =
  for seed = 0 to 219 do
    let rng = Rng.of_int ((seed * 31) + 1) in
    let ops = List.init 40 (fun _ -> Rng.int rng 1000) in
    match run_oracle_schedule ops with
    | None -> ()
    | Some (step, msgs) ->
        let small = shrink_ops ops in
        Alcotest.failf
          "seed %d violated the audit at step %d:@.%s@.shrunk schedule: [%s]"
          seed step (String.concat "\n" msgs) (pp_ops small)
  done

(* The same property under QCheck's own generation and shrinking. *)
let qcheck_oracle =
  QCheck.Test.make ~count:200 ~name:"oracle audit holds on random schedules"
    QCheck.(small_list (int_bound 1000))
    (fun ops ->
      match run_oracle_schedule ops with
      | None -> true
      | Some (step, msgs) ->
          QCheck.Test.fail_reportf "audit violated at step %d:@.%s" step
            (String.concat "\n" msgs))

(* ------------------------------------------------------------------ *)
(* Snapshot battery: a healthy cluster passes; tampered views fail.    *)

let build_cluster ?(linger = 0.) ~seed () =
  let rt =
    Runtime.create
      ~faults:(Fault.create ~seed ())
      ~pmin:8
      ~approach:(Runtime.Local { vmin = 2 })
      ~rfactor:3 ~read_quorum:2 ~write_quorum:2 ~linger ~snodes:4 ~seed ()
  in
  for i = 1 to 3 do
    Runtime.create_vnode rt ~id:(vid ~snode:(i mod 4) ~vnode:(i / 4)) ()
  done;
  Runtime.run rt;
  for k = 0 to 9 do
    Runtime.put rt ~via:(k mod 4) ~key:(Printf.sprintf "key-%d" k)
      ~value:(Printf.sprintf "v-%d" k) ()
  done;
  Runtime.run rt;
  rt

let test_healthy_view_passes () =
  let rt = build_cluster ~seed:3 () in
  (match Invariants.check_runtime rt with
  | [] -> ()
  | fs ->
      Alcotest.failf "healthy cluster flagged:@.%s"
        (String.concat "\n" (Invariants.to_strings fs)));
  (* The snapshot battery and the model-level audit agree on health. *)
  match Runtime.audit rt with
  | Ok () -> ()
  | Error msgs ->
      Alcotest.failf "Runtime.audit disagrees:@.%s" (String.concat "\n" msgs)

let test_tampered_view_detected () =
  let rt = build_cluster ~seed:4 () in
  let v = Runtime.view rt in
  let space = Runtime.space rt in
  let pmin = Runtime.pmin rt and vmax = Runtime.vmax rt in
  let check v = Invariants.check_view ~space ~pmin ~vmax v in
  Alcotest.(check bool) "untampered passes" true (check v = []);
  (* Tamper 1: delete a vnode from one live snode — coverage breaks. *)
  let drop_vnode (s : Runtime.View.snode_view) =
    match s.vnodes with
    | [] -> s
    | _ :: rest -> { s with vnodes = rest }
  in
  let tampered1 =
    {
      v with
      Runtime.View.snodes =
        (match v.Runtime.View.snodes with
        | s :: rest -> drop_vnode s :: rest
        | [] -> []);
    }
  in
  Alcotest.(check bool) "missing vnode detected" true (check tampered1 <> []);
  (* Tamper 2: blank a live snode's routing cache — coverage finding. *)
  let tampered2 =
    {
      v with
      Runtime.View.snodes =
        List.map
          (fun (s : Runtime.View.snode_view) ->
            if s.sid = 0 then { s with cache = [] } else s)
          v.Runtime.View.snodes;
    }
  in
  Alcotest.(check bool) "blank cache detected" true (check tampered2 <> [])

(* ------------------------------------------------------------------ *)
(* Per-commit audit hook: the snode-local battery holds after every
   balancing commit, including mid-churn.                              *)

let test_per_commit_hook () =
  let rt =
    Runtime.create
      ~faults:(Fault.create ~seed:11 ())
      ~pmin:8
      ~approach:(Runtime.Local { vmin = 2 })
      ~rfactor:3 ~read_quorum:2 ~write_quorum:2 ~snodes:4 ~seed:11 ()
  in
  let commits = ref 0 in
  let bad = ref [] in
  Runtime.set_on_commit rt
    (Some
       (fun ~event:_ ~snode ->
         incr commits;
         let v = Runtime.view rt in
         match
           List.find_opt
             (fun (s : Runtime.View.snode_view) -> s.sid = snode)
             v.Runtime.View.snodes
         with
         | None -> bad := "hook: unknown snode" :: !bad
         | Some s ->
             bad :=
               Invariants.to_strings
                 (Invariants.check_snode ~space:(Runtime.space rt) s)
               @ !bad));
  for i = 1 to 5 do
    Runtime.create_vnode rt ~id:(vid ~snode:(i mod 4) ~vnode:(i / 4)) ()
  done;
  Runtime.run rt;
  for k = 0 to 7 do
    Runtime.put rt ~via:(k mod 4) ~key:(Printf.sprintf "key-%d" k)
      ~value:(Printf.sprintf "v-%d" k) ()
  done;
  Runtime.remove_vnode rt ~id:(vid ~snode:1 ~vnode:0) (fun _ -> ());
  Runtime.run rt;
  Runtime.set_on_commit rt None;
  Alcotest.(check bool) "commits observed" true (!commits > 0);
  match !bad with
  | [] -> ()
  | msgs ->
      Alcotest.failf "per-commit audit violated:@.%s" (String.concat "\n" msgs)

(* ------------------------------------------------------------------ *)
(* Satellite: linger batching is schedule-transparent. The same seed
   driven with linger = 0 and linger > 0 must pass through View-equal
   states at every quiescent stage boundary.                           *)

(* What batching must leave invariant is the data plane: at every
   commit boundary the authoritative key->value map equals the linger-0
   run's, state for state, and every snapshot passes the full battery.
   Structural placement is allowed to differ -- balancing victim
   selection draws from per-snode RNG streams whose consumption order
   message coalescing legitimately reorders -- so the projection below
   compares what the store holds, not which vnode holds it. *)
let kv_projection (v : Runtime.View.t) =
  List.concat_map
    (fun (s : Runtime.View.snode_view) ->
      List.concat_map
        (fun (vn : Runtime.View.vnode_view) -> vn.data)
        s.vnodes)
    v.Runtime.View.snodes
  |> List.sort compare

let stage_views ~linger ~seed =
  let rt =
    Runtime.create
      ~faults:(Fault.create ~seed ())
      ~pmin:8
      ~approach:(Runtime.Local { vmin = 2 })
      ~rfactor:3 ~read_quorum:2 ~write_quorum:2 ~linger ~snodes:4 ~seed ()
  in
  let views = ref [] in
  let snap () = views := Runtime.view rt :: !views in
  for i = 1 to 3 do
    Runtime.create_vnode rt ~id:(vid ~snode:(i mod 4) ~vnode:(i / 4)) ();
    Runtime.run rt;
    snap ()
  done;
  for k = 0 to 9 do
    Runtime.put rt ~via:(k mod 4) ~key:(Printf.sprintf "key-%d" k)
      ~value:(Printf.sprintf "a-%d" k) ()
  done;
  Runtime.run rt;
  snap ();
  for i = 4 to 5 do
    Runtime.create_vnode rt ~id:(vid ~snode:(i mod 4) ~vnode:(i / 4)) ();
    Runtime.run rt;
    snap ()
  done;
  for k = 0 to 9 do
    Runtime.put rt ~via:((k + 1) mod 4) ~key:(Printf.sprintf "key-%d" k)
      ~value:(Printf.sprintf "b-%d" k) ()
  done;
  Runtime.run rt;
  snap ();
  List.rev !views

let test_linger_transparency () =
  for seed = 0 to 49 do
    let plain = stage_views ~linger:0. ~seed in
    let batched = stage_views ~linger:0.002 ~seed in
    List.iteri
      (fun stage (a, b) ->
        let pa = kv_projection a and pb = kv_projection b in
        if pa <> pb then
          Alcotest.failf
            "seed %d: batched data plane diverged at stage %d@.plain: %a@.\
             batched: %a"
            seed stage Runtime.View.pp a Runtime.View.pp b;
        List.iter
          (fun v ->
            match
              Invariants.check_view ~space:Dht_hashspace.Space.default
                ~pmin:8 ~vmax:4 v
            with
            | [] -> ()
            | fs ->
                Alcotest.failf "seed %d stage %d audit:@.%s" seed stage
                  (String.concat "\n" (Invariants.to_strings fs)))
          [ a; b ])
      (List.combine plain batched)
  done

let suite =
  [
    Alcotest.test_case "schedule round-trip" `Quick test_schedule_roundtrip;
    Alcotest.test_case "schedule parse errors" `Quick test_schedule_parse_errors;
    Alcotest.test_case "oracle 220-seed join/leave sweep" `Slow
      test_oracle_sweep;
    QCheck_alcotest.to_alcotest qcheck_oracle;
    Alcotest.test_case "healthy view passes battery" `Quick
      test_healthy_view_passes;
    Alcotest.test_case "tampered views are detected" `Quick
      test_tampered_view_detected;
    Alcotest.test_case "per-commit snode audit holds" `Quick
      test_per_commit_hook;
    Alcotest.test_case "linger batching is schedule-transparent" `Slow
      test_linger_transparency;
  ]
