(* Tests for Dht_experiments: the per-figure drivers (small scales). *)

module Curve = Dht_experiments.Curve
module Runs = Dht_experiments.Runs
module Sims = Dht_experiments.Sims
module Figures = Dht_experiments.Figures
module Extensions = Dht_experiments.Extensions
module Rng = Dht_prng.Rng

let check = Alcotest.check

(* --- Curve --- *)

let test_curve_basics () =
  let c = Curve.of_ys ~label:"c" [| 1.; 2.; 3. |] in
  check (Alcotest.float 0.) "last" 3. (Curve.last c);
  check (Alcotest.float 0.) "x starts at 1" 1. c.Curve.xs.(0);
  check (Alcotest.float 0.) "at_x" 2. (Curve.at_x c 2.);
  Alcotest.check_raises "beyond range" Not_found (fun () ->
      ignore (Curve.at_x c 10.));
  Alcotest.check_raises "empty" (Invalid_argument "Curve.make: empty or mismatched arrays")
    (fun () -> ignore (Curve.make ~label:"x" ~xs:[||] ~ys:[||]))

(* --- Runs --- *)

let test_mean_curve_averages () =
  (* Each run returns a constant curve derived from its own rng; the mean
     must be the average of those constants. *)
  let values = ref [] in
  let ys =
    Runs.mean_curve ~runs:8 ~seed:3 (fun rng ->
        let v = Rng.float rng in
        values := v :: !values;
        Array.make 4 v)
  in
  let expected = List.fold_left ( +. ) 0. !values /. 8. in
  Array.iter (fun y -> check (Alcotest.float 1e-12) "mean" expected y) ys;
  check Alcotest.int "curve length" 4 (Array.length ys)

let test_mean_curve_distinct_streams () =
  let values = ref [] in
  ignore
    (Runs.mean_curve ~runs:6 ~seed:3 (fun rng ->
         values := Rng.float rng :: !values;
         [| 0. |]));
  let distinct = List.sort_uniq compare !values in
  check Alcotest.int "six distinct run streams" 6 (List.length distinct)

let test_mean_curve_reproducible () =
  let go () = Runs.mean_curve ~runs:3 ~seed:5 (fun rng -> [| Rng.float rng |]) in
  check Alcotest.(array (float 0.)) "same seed" (go ()) (go ())

let test_runs_validation () =
  Alcotest.check_raises "zero runs" (Invalid_argument "Runs: runs must be positive")
    (fun () -> ignore (Runs.mean_curve ~runs:0 ~seed:1 (fun _ -> [| 1. |])))

(* --- Sims --- *)

let test_local_curve_shape () =
  let ys =
    Sims.local_curve ~pmin:8 ~vmin:8 ~vnodes:32
      ~sample:Dht_core.Local_dht.sigma_qv (Rng.of_int 1)
  in
  check Alcotest.int "one sample per creation" 32 (Array.length ys);
  check (Alcotest.float 0.) "sigma starts at 0" 0. ys.(0)

let test_global_curve_deterministic () =
  let a = Sims.global_curve ~pmin:8 ~vnodes:32 ~sample:Dht_core.Global_dht.sigma_qv () in
  let b = Sims.global_curve ~pmin:8 ~vnodes:32 ~sample:Dht_core.Global_dht.sigma_qv () in
  check Alcotest.(array (float 0.)) "identical" a b

let test_single_group_run_equals_global () =
  (* With one group (V <= Vmax) the local simulation is exactly the global
     one, whatever the seed — the zone-1 phenomenon of §4.1.1. *)
  let local =
    Sims.local_curve ~pmin:16 ~vmin:16 ~vnodes:32
      ~sample:Dht_core.Local_dht.sigma_qv (Rng.of_int 12345)
  in
  let global =
    Sims.global_curve ~pmin:16 ~vnodes:32 ~sample:Dht_core.Global_dht.sigma_qv ()
  in
  Array.iteri
    (fun i y -> check (Alcotest.float 1e-9) (Printf.sprintf "V=%d" (i + 1)) global.(i) y)
    local

let test_ch_curve () =
  let ys = Sims.ch_curve ~points_per_node:8 ~nodes:64 (Rng.of_int 3) in
  check Alcotest.int "length" 64 (Array.length ys);
  check (Alcotest.float 0.) "single node balanced" 0. ys.(0);
  check Alcotest.bool "imbalance appears" true (ys.(63) > 0.)

(* --- Figures (reduced scale) --- *)

let test_fig4_small () =
  let curves = Figures.fig4 ~runs:3 ~vnodes:64 ~pairs:[ 8; 16 ] ~seed:1 () in
  check Alcotest.int "two curves" 2 (List.length curves);
  List.iter
    (fun (c : Curve.t) -> check Alcotest.int "length" 64 (Array.length c.Curve.ys))
    curves;
  check Alcotest.string "label" "(Pmin,Vmin)=(8,8)" (List.hd curves).Curve.label

let test_fig4_ordering () =
  (* Larger Pmin=Vmin must balance better at the end (figure 4's story). *)
  let curves = Figures.fig4 ~runs:5 ~vnodes:256 ~pairs:[ 8; 32 ] ~seed:2 () in
  match curves with
  | [ small; large ] ->
      check Alcotest.bool
        (Printf.sprintf "%.2f > %.2f" (Curve.last small) (Curve.last large))
        true
        (Curve.last small > Curve.last large)
  | _ -> Alcotest.fail "expected two curves"

let test_fig5_theta () =
  let thetas = Figures.fig5 ~runs:2 ~vnodes:128 ~vmins:[ 8; 16; 32 ] ~seed:1 () in
  check Alcotest.int "three points" 3 (List.length thetas);
  List.iter
    (fun (_, t) -> check Alcotest.bool "theta in (0, 1]" true (t > 0. && t <= 1.))
    thetas;
  (* The largest Vmin contributes alpha = 0.5 exactly from the first term. *)
  let _, t32 = List.nth thetas 2 in
  check Alcotest.bool "largest vmin >= 0.5" true (t32 >= 0.5)

let test_argmin_theta () =
  check Alcotest.int "argmin" 32
    (Figures.argmin_theta [ (8, 0.6); (16, 0.5); (32, 0.3); (64, 0.4) ]);
  Alcotest.check_raises "empty" (Invalid_argument "Figures.argmin_theta: empty")
    (fun () -> ignore (Figures.argmin_theta []))

let test_fig6_includes_global_limit () =
  (* Vmin = vnodes/2 never splits group 0, reproducing the global curve. *)
  let curves = Figures.fig6 ~runs:2 ~vnodes:64 ~pmin:8 ~vmins:[ 4; 32 ] ~seed:3 () in
  match curves with
  | [ small; global_like ] ->
      let global =
        Sims.global_curve ~pmin:8 ~vnodes:64 ~sample:Dht_core.Global_dht.sigma_qv ()
      in
      check (Alcotest.float 1e-9) "matches global at the end" global.(63)
        (Curve.last global_like);
      check Alcotest.bool "small vmin degrades balance" true
        (Curve.last small >= Curve.last global_like)
  | _ -> Alcotest.fail "expected two curves"

let test_fig7_fig8 () =
  let d = Figures.fig7_fig8 ~runs:3 ~vnodes:128 ~pmin:8 ~vmin:8 ~seed:4 () in
  check (Alcotest.float 0.) "greal starts at 1" 1. d.Figures.greal.Curve.ys.(0);
  check (Alcotest.float 0.) "gideal starts at 1" 1. d.Figures.gideal.Curve.ys.(0);
  check (Alcotest.float 0.) "gideal at 128 with vmax 16" 8.
    (Curve.at_x d.Figures.gideal 128.);
  check Alcotest.bool "greal grows" true (Curve.last d.Figures.greal > 4.);
  check Alcotest.int "sigma_qg same length" 128
    (Array.length d.Figures.sigma_qg.Curve.ys)

let test_fig9_small () =
  let curves =
    Figures.fig9 ~runs:2 ~nodes:64 ~pmin:8 ~vmins:[ 8 ] ~ch_points:[ 8 ] ~seed:5 ()
  in
  check Alcotest.int "two curves" 2 (List.length curves);
  check Alcotest.string "CH first" "CH, 8 partitions/node" (List.hd curves).Curve.label

let test_zone1_driver () =
  let local, global = Figures.zone1 ~runs:2 ~pmin_vmin:8 ~seed:6 () in
  check Alcotest.int "length vmax" 16 (Array.length local.Curve.ys);
  Array.iteri
    (fun i y -> check (Alcotest.float 1e-9) (Printf.sprintf "V=%d" (i + 1)) global.Curve.ys.(i) y)
    local.Curve.ys

let test_plateau_ratios () =
  let c1 = Curve.of_ys ~label:"a" [| 0.; 10. |] in
  let c2 = Curve.of_ys ~label:"b" [| 0.; 7. |] in
  match Figures.plateau_ratios [ c1; c2 ] with
  | [ ("a", f1, r1); ("b", f2, r2) ] ->
      check (Alcotest.float 1e-12) "first final" 10. f1;
      check (Alcotest.float 1e-12) "first ratio" 1. r1;
      check (Alcotest.float 1e-12) "second final" 7. f2;
      check (Alcotest.float 1e-12) "second ratio" 0.7 r2
  | _ -> Alcotest.fail "unexpected shape"

let test_stability_driver () =
  let curve, slope = Figures.stability ~runs:3 ~vnodes:2048 ~pmin:8 ~vmin:8 ~seed:7 () in
  check Alcotest.int "length" 2048 (Array.length curve.Curve.ys);
  (* The plateau claim: past the 2nd-zone rise the curve is near-flat. *)
  check Alcotest.bool (Printf.sprintf "slope %.3f %%/1000v small" slope) true
    (abs_float slope < 3.)

(* --- Extensions (reduced scale) --- *)

let test_parallel_rows () =
  let rows = Extensions.parallel ~snodes:8 ~vnodes:64 ~rate:2000. ~vmins:[ 8 ] ~seed:8 () in
  match rows with
  | [ g; l ] ->
      check Alcotest.string "global label" "global" g.Extensions.label;
      check Alcotest.int "global serialized" 1
        g.Extensions.result.Dht_protocol.Creation_sim.max_concurrent;
      check Alcotest.bool "local faster or equal" true
        (l.Extensions.result.Dht_protocol.Creation_sim.makespan
        <= g.Extensions.result.Dht_protocol.Creation_sim.makespan +. 1e-9)
  | _ -> Alcotest.fail "expected two rows"

let test_hetero_report () =
  let r = Extensions.hetero ~total_vnodes:64 ~pmin:8 ~vmin:8 ~seed:9 () in
  check Alcotest.int "14 nodes" 14 (Array.length r.Extensions.names);
  check (Alcotest.float 1e-9) "quotas sum to 1" 1.
    (Dht_stats.Descriptive.sum r.Extensions.actual_quotas);
  check (Alcotest.float 1e-9) "shares sum to 1" 1.
    (Dht_stats.Descriptive.sum r.Extensions.ideal_shares);
  check Alcotest.int "vnodes apportioned" 64
    (Array.fold_left ( + ) 0 r.Extensions.vnode_counts);
  check Alcotest.bool
    (Printf.sprintf "max rel err %.3f bounded" r.Extensions.max_rel_err)
    true
    (r.Extensions.max_rel_err < 0.6);
  (* A 4x node must end with roughly 4x the quota of a 1x node. *)
  check Alcotest.bool "fast node holds more" true
    (r.Extensions.actual_quotas.(13) > 2. *. r.Extensions.actual_quotas.(0))

let test_kvload_report () =
  let r = Extensions.kvload ~keys:5000 ~initial_vnodes:16 ~final_vnodes:32 ~seed:10 () in
  check Alcotest.int "no key lost" 0 r.Extensions.lost;
  check Alcotest.bool "migrations happened" true (r.Extensions.migrations > 0);
  check Alcotest.bool "load sigma sane" true
    (r.Extensions.load_sigma_after > 0. && r.Extensions.load_sigma_after < 50.)

let test_kvload_zipf () =
  let r =
    Extensions.kvload ~keys:2000 ~initial_vnodes:8 ~final_vnodes:16 ~zipf:true
      ~seed:11 ()
  in
  check Alcotest.int "no key lost (zipf)" 0 r.Extensions.lost;
  check Alcotest.int "all keys stored" 2000 r.Extensions.keys

let test_chaos_recovers () =
  (* Small chaos run: drops, duplicates, jitter and one mid-burst crash —
     all operations must complete and the audit must hold once faults
     cease (the ISSUE acceptance bar, at test scale). *)
  let module Runtime = Dht_snode.Runtime in
  let r =
    Extensions.chaos ~snodes:6 ~vnodes:12 ~keys:120 ~pmin:8 ~vmin:4
      ~crashes:1 ~seed:3 ()
  in
  check Alcotest.int "all vnodes created" 12 r.Extensions.chaos_vnodes;
  check Alcotest.int "no key lost or stale" 0 r.Extensions.chaos_keys_wrong;
  check Alcotest.int "no operation stuck" 0 r.Extensions.chaos_pending;
  check Alcotest.bool "audit holds after faults" true
    r.Extensions.chaos_audit_ok;
  let s = r.Extensions.chaos_stats in
  check Alcotest.int "crashed once" 1 s.Runtime.crashes;
  check Alcotest.int "recovered once" 1 s.Runtime.recoveries;
  check Alcotest.bool "faults actually bit" true (s.Runtime.drops > 0);
  check Alcotest.bool "faulty run costs more messages" true
    (r.Extensions.chaos_messages > r.Extensions.baseline_messages)

let test_chaos_replicated_durable () =
  (* Same chaos workload through the quorum path: every acknowledged
     write must survive the crash, and the write volleys fired into the
     crash window must exercise hinted handoff. *)
  let module Runtime = Dht_snode.Runtime in
  let r =
    Extensions.chaos ~snodes:6 ~vnodes:12 ~keys:120 ~pmin:8 ~vmin:4
      ~crashes:1 ~rfactor:3 ~read_quorum:2 ~write_quorum:2 ~seed:3 ()
  in
  check Alcotest.int "no key lost or stale" 0 r.Extensions.chaos_keys_wrong;
  check Alcotest.int "no operation stuck" 0 r.Extensions.chaos_pending;
  check Alcotest.bool "audit holds after faults" true
    r.Extensions.chaos_audit_ok;
  check Alcotest.bool "writes were acknowledged" true
    (r.Extensions.chaos_acked_writes > 0);
  check Alcotest.int "no acknowledged write lost" 0
    r.Extensions.chaos_lost_acked;
  let rs = r.Extensions.chaos_repl in
  check Alcotest.bool "anti-entropy resynced cells" true
    (rs.Runtime.sync_cells > 0);
  check Alcotest.bool "hints drained on restart" true
    (rs.Runtime.hints_flushed = rs.Runtime.hints_stored)

let suite =
  [
    Alcotest.test_case "curve basics" `Quick test_curve_basics;
    Alcotest.test_case "mean_curve averages" `Quick test_mean_curve_averages;
    Alcotest.test_case "mean_curve distinct streams" `Quick
      test_mean_curve_distinct_streams;
    Alcotest.test_case "mean_curve reproducible" `Quick
      test_mean_curve_reproducible;
    Alcotest.test_case "runs validation" `Quick test_runs_validation;
    Alcotest.test_case "local curve shape" `Quick test_local_curve_shape;
    Alcotest.test_case "global curve deterministic" `Quick
      test_global_curve_deterministic;
    Alcotest.test_case "single group = global (zone 1)" `Quick
      test_single_group_run_equals_global;
    Alcotest.test_case "ch curve" `Quick test_ch_curve;
    Alcotest.test_case "fig4 small" `Quick test_fig4_small;
    Alcotest.test_case "fig4 ordering" `Quick test_fig4_ordering;
    Alcotest.test_case "fig5 theta" `Quick test_fig5_theta;
    Alcotest.test_case "argmin theta" `Quick test_argmin_theta;
    Alcotest.test_case "fig6 global limit" `Quick test_fig6_includes_global_limit;
    Alcotest.test_case "fig7/fig8 dynamics" `Quick test_fig7_fig8;
    Alcotest.test_case "fig9 small" `Quick test_fig9_small;
    Alcotest.test_case "zone1 driver" `Quick test_zone1_driver;
    Alcotest.test_case "plateau ratios" `Quick test_plateau_ratios;
    Alcotest.test_case "stability driver" `Quick test_stability_driver;
    Alcotest.test_case "parallel rows" `Quick test_parallel_rows;
    Alcotest.test_case "hetero report" `Quick test_hetero_report;
    Alcotest.test_case "kvload report" `Quick test_kvload_report;
    Alcotest.test_case "kvload zipf" `Quick test_kvload_zipf;
    Alcotest.test_case "chaos recovers" `Quick test_chaos_recovers;
    Alcotest.test_case "chaos replicated durable" `Quick
      test_chaos_replicated_durable;
  ]
