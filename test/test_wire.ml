(* Wire protocol: size estimates and trace tags for every constructor.

   There is no serialization codec (messages travel as OCaml values through
   the simulated network), so the contract under test is the size model —
   every constructor must charge at least the envelope, payload bytes must
   be counted, and the reliable-layer framing must add only its own header
   on top of the inner message. *)

module Wire = Dht_snode.Wire
module Plan = Dht_snode.Plan
open Dht_core
open Dht_hashspace

let check = Alcotest.check
let vid i = Vnode_id.make ~snode:i ~vnode:0
let gid value bits = Group_id.make ~value ~bits

let sample_plan =
  Plan.creation ~pmin:8 ~counts:[ (vid 0, 10); (vid 1, 9) ] ~newcomer:(vid 2)

let sample_split =
  {
    Wire.parent = Group_id.root;
    left = gid 0 1;
    left_members = [ (vid 0, 8) ];
    right = gid 1 1;
    right_members = [ (vid 1, 8) ];
  }

let prepare ~split =
  Wire.Prepare
    {
      event = 3;
      split;
      target = Group_id.root;
      level_before = 0;
      epoch_before = 4;
      plan = sample_plan;
      newcomer = vid 2;
      donor_batches = 1;
    }

let moved = [ (Span.root, vid 1) ]

let remove_prepare ~moves =
  Wire.Remove_prepare
    {
      event = 7;
      group = Group_id.root;
      leaving = vid 1;
      epoch_before = 2;
      moves;
      remaining = [ (vid 0, 16) ];
    }

(* One representative of every constructor (all three routed ops). *)
let all_messages =
  [
    Wire.Routed
      { point = 5; hops = 1; retries = 0; origin = 0;
        op = Wire.Op_create { newcomer = vid 2 } };
    Wire.Routed
      { point = 5; hops = 0; retries = 0; origin = 0;
        op = Wire.Op_put { key = "k"; value = "v"; token = 1 } };
    Wire.Routed
      { point = 5; hops = 0; retries = 1; origin = 0;
        op = Wire.Op_get { key = "k"; token = 2 } };
    Wire.Create_at_group
      { group = Group_id.root; point = 5; newcomer = vid 2; origin = 0 };
    prepare ~split:(Some sample_split);
    Wire.Prepare_ack { event = 3; moved };
    Wire.Transfer
      { event = 3; to_vnode = vid 2; spans = [ Span.root ];
        data = [ ("k", "v") ] };
    Wire.All_received { event = 3 };
    Wire.Commit { event = 3; moved };
    Wire.Create_done { newcomer = vid 2 };
    Wire.Remove_request { leaving = vid 1; origin = 0; token = 3 };
    Wire.Remove_at_group
      { group = Group_id.root; leaving = vid 1; origin = 0; token = 3 };
    remove_prepare ~moves:[ { Plan.src = vid 1; dst = vid 0; n = 2 } ];
    Wire.Remove_done { token = 3; ok = true };
    Wire.Put_ack { token = 1 };
    Wire.Get_reply { token = 2; value = Some "v" };
    Wire.Req { seq = 9; payload = Wire.All_received { event = 3 } };
    Wire.Ack { seq = 9 };
    Wire.Lpdr_pull { group = Group_id.root };
    Wire.Lpdr_push
      { group = Group_id.root; view = Some (0, 4, [ (vid 0, 16) ]) };
  ]

let test_every_constructor_sized () =
  List.iter
    (fun m ->
      check Alcotest.bool
        (Printf.sprintf "size of %s positive" (Wire.describe m))
        true
        (Wire.size_bytes m > 0))
    all_messages

let test_tags_distinct () =
  let tags = List.map Wire.describe all_messages in
  List.iter
    (fun tag -> check Alcotest.bool "tag nonempty" true (String.length tag > 0))
    tags;
  let distinct = List.sort_uniq compare tags in
  check Alcotest.int "tags distinguish constructors" (List.length tags)
    (List.length distinct)

let test_payload_monotonic () =
  let size = Wire.size_bytes in
  let put key value =
    Wire.Routed
      { point = 0; hops = 0; retries = 0; origin = 0;
        op = Wire.Op_put { key; value; token = 0 } }
  in
  check Alcotest.int "put charges payload bytes"
    (size (put "k" "v") + 120)
    (size (put "k" (String.make 121 'x')));
  let transfer data =
    Wire.Transfer { event = 0; to_vnode = vid 2; spans = []; data }
  in
  check Alcotest.bool "transfer charges data" true
    (size (transfer [ ("key", String.make 100 'x') ])
    > size (transfer []) + 100);
  check Alcotest.bool "split enlarges prepare" true
    (size (prepare ~split:(Some sample_split)) > size (prepare ~split:None));
  check Alcotest.bool "moves enlarge remove-prepare" true
    (size (remove_prepare ~moves:[ { Plan.src = vid 1; dst = vid 0; n = 2 } ])
    > size (remove_prepare ~moves:[]));
  let push view = Wire.Lpdr_push { group = Group_id.root; view } in
  check Alcotest.bool "lpdr view counted" true
    (size (push (Some (0, 4, [ (vid 0, 16); (vid 1, 16) ])))
    > size (push None));
  let commit moved = Wire.Commit { event = 0; moved } in
  check Alcotest.bool "commit moves counted" true
    (size (commit moved) > size (commit []))

let test_req_framing () =
  (* The reliable frame adds a fixed header to the inner message and keeps
     its tag visible for tracing. *)
  let inner = Wire.Commit { event = 3; moved } in
  let framed = Wire.Req { seq = 1; payload = inner } in
  check Alcotest.int "req header is 16 bytes"
    (Wire.size_bytes inner + 16)
    (Wire.size_bytes framed);
  check Alcotest.string "req tag nests" "req:commit" (Wire.describe framed);
  check Alcotest.string "double framing nests twice" "req:req:commit"
    (Wire.describe (Wire.Req { seq = 2; payload = framed }));
  check Alcotest.string "ack tag" "ack" (Wire.describe (Wire.Ack { seq = 1 }))

let suite =
  [
    Alcotest.test_case "every constructor has positive size" `Quick
      test_every_constructor_sized;
    Alcotest.test_case "describe tags are distinct" `Quick test_tags_distinct;
    Alcotest.test_case "payload bytes are charged" `Quick
      test_payload_monotonic;
    Alcotest.test_case "reliable frame adds only a header" `Quick
      test_req_framing;
  ]
