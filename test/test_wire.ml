(* Wire protocol: size estimates and trace tags for every constructor.

   There is no serialization codec (messages travel as OCaml values through
   the simulated network), so the contract under test is the size model —
   every constructor must charge at least the envelope, payload bytes must
   be counted, and the reliable-layer framing must add only its own header
   on top of the inner message.

   The sweep is exhaustive BY CONSTRUCTION: [canonical] and [inflate]
   match every constructor with no wildcard, so adding a message to
   {!Wire.msg} without accounting for it here fails compilation (the dev
   profile promotes the non-exhaustive-match warning to an error), and the
   coverage test fails at runtime if [all_messages] misses one. *)

module Wire = Dht_snode.Wire
module Plan = Dht_snode.Plan
module Versioned = Dht_kv.Versioned
open Dht_core
open Dht_hashspace

let check = Alcotest.check
let vid i = Vnode_id.make ~snode:i ~vnode:0
let gid value bits = Group_id.make ~value ~bits
let cell value = Versioned.cell ~value ~ts:1.0 ~origin:0 ()

let sample_plan =
  Plan.creation ~pmin:8 ~counts:[ (vid 0, 10); (vid 1, 9) ] ~newcomer:(vid 2)

let sample_split =
  {
    Wire.parent = Group_id.root;
    left = gid 0 1;
    left_members = [ (vid 0, 8) ];
    right = gid 1 1;
    right_members = [ (vid 1, 8) ];
  }

let prepare ~split =
  Wire.Prepare
    {
      event = 3;
      split;
      target = Group_id.root;
      level_before = 0;
      epoch_before = 4;
      plan = sample_plan;
      newcomer = vid 2;
      donor_batches = 1;
    }

let moved = [ (Span.root, vid 1, [ 1; 2; 3 ]) ]

let sample_summary origin =
  Dht_balance.Summary.make ~origin ~version:3 ~heat:1.5 ~queue:2 ~partitions:4
    ~stamped:0.25

let remove_prepare ~moves =
  Wire.Remove_prepare
    {
      event = 7;
      group = Group_id.root;
      leaving = vid 1;
      epoch_before = 2;
      moves;
      remaining = [ (vid 0, 16) ];
    }

(* One distinct index per constructor (routed ops fold into [Routed]).
   No wildcard: extending {!Wire.msg} or {!Wire.routed_op} breaks this
   match at compile time, which is the point — new messages must be added
   to the sweep. Keep [constructor_count] in step with the largest index;
   the coverage test cross-checks both against [all_messages]. *)
let canonical = function
  | Wire.Routed { op = Wire.Op_create _; _ } -> 0
  | Wire.Routed { op = Wire.Op_put _; _ } -> 1
  | Wire.Routed { op = Wire.Op_get _; _ } -> 2
  | Wire.Routed { op = Wire.Op_sync _; _ } -> 3
  | Wire.Create_at_group _ -> 4
  | Wire.Prepare _ -> 5
  | Wire.Prepare_ack _ -> 6
  | Wire.Transfer _ -> 7
  | Wire.All_received _ -> 8
  | Wire.Commit _ -> 9
  | Wire.Create_done _ -> 10
  | Wire.Remove_request _ -> 11
  | Wire.Remove_at_group _ -> 12
  | Wire.Remove_prepare _ -> 13
  | Wire.Remove_done _ -> 14
  | Wire.Put_ack _ -> 15
  | Wire.Get_reply _ -> 16
  | Wire.Repl_put _ -> 17
  | Wire.Repl_put_ack _ -> 18
  | Wire.Repl_get _ -> 19
  | Wire.Repl_get_reply _ -> 20
  | Wire.Repl_hinted _ -> 21
  | Wire.Hint_flush _ -> 22
  | Wire.Hint_ack _ -> 23
  | Wire.Repl_repair _ -> 24
  | Wire.Repl_digest _ -> 25
  | Wire.Repl_sync_request _ -> 26
  | Wire.Repl_sync _ -> 27
  | Wire.Ae_request -> 28
  | Wire.Req _ -> 29
  | Wire.Ack _ -> 30
  | Wire.Lpdr_pull _ -> 31
  | Wire.Lpdr_push _ -> 32
  | Wire.Batch _ -> 33
  | Wire.Busy _ -> 34
  | Wire.Traced _ -> 35
  | Wire.Lb_report _ -> 36
  | Wire.Lb_proposal _ -> 37
  | Wire.Lb_transfer _ -> 38
  | Wire.Lb_swap _ -> 39
  | Wire.Mt_root _ -> 40
  | Wire.Mt_request _ -> 41
  | Wire.Mt_frames _ -> 42
  | Wire.Mt_leaf _ -> 43
  | Wire.Mt_want _ -> 44
  | Wire.Range_get _ -> 45
  | Wire.Range_reply _ -> 46

let constructor_count = 47

(* The same message with a strictly larger variable-size payload, or the
   message itself when the constructor is fixed-size. Also wildcard-free,
   so a new constructor must decide its inflation here too. *)
let big = String.make 64 'x'

let inflate = function
  | Wire.Routed ({ op = Wire.Op_create _; _ } as r) -> Wire.Routed r
  | Wire.Routed ({ op = Wire.Op_put p; _ } as r) ->
      Wire.Routed { r with op = Wire.Op_put { p with value = big } }
  | Wire.Routed ({ op = Wire.Op_get g; _ } as r) ->
      Wire.Routed { r with op = Wire.Op_get { g with key = big } }
  | Wire.Routed ({ op = Wire.Op_sync s; _ } as r) ->
      Wire.Routed { r with op = Wire.Op_sync { s with cell = cell big } }
  | Wire.Create_at_group _ as m -> m
  | Wire.Prepare _ -> prepare ~split:(Some sample_split)
  | Wire.Prepare_ack p -> Wire.Prepare_ack { p with moved = moved @ p.moved }
  | Wire.Transfer tr ->
      Wire.Transfer { tr with data = ("extra", cell big) :: tr.data }
  | Wire.All_received _ as m -> m
  | Wire.Commit c -> Wire.Commit { c with moved = moved @ c.moved }
  | Wire.Create_done _ as m -> m
  | Wire.Remove_request _ as m -> m
  | Wire.Remove_at_group _ as m -> m
  | Wire.Remove_prepare rp ->
      Wire.Remove_prepare
        { rp with moves = { Plan.src = vid 1; dst = vid 0; n = 2 } :: rp.moves }
  | Wire.Remove_done _ as m -> m
  | Wire.Put_ack p -> Wire.Put_ack { p with hint = Some (Span.root, vid 1) }
  | Wire.Get_reply g -> Wire.Get_reply { g with value = Some big }
  | Wire.Busy _ as m -> m
  | Wire.Repl_put p -> Wire.Repl_put { p with cell = cell big }
  | Wire.Repl_put_ack _ as m -> m
  | Wire.Repl_get g -> Wire.Repl_get { g with key = big }
  | Wire.Repl_get_reply g -> Wire.Repl_get_reply { g with cell = Some (cell big) }
  | Wire.Repl_hinted h -> Wire.Repl_hinted { h with cell = cell big }
  | Wire.Hint_flush h -> Wire.Hint_flush { h with cell = cell big }
  | Wire.Hint_ack _ -> Wire.Hint_ack { key = big }
  | Wire.Repl_repair r -> Wire.Repl_repair { r with cell = cell big }
  | Wire.Repl_digest _ as m -> m
  | Wire.Repl_sync_request _ as m -> m
  | Wire.Repl_sync s ->
      Wire.Repl_sync { s with cells = ("extra", cell big) :: s.cells }
  | Wire.Ae_request as m -> m
  | Wire.Req r -> Wire.Req { r with payload = Wire.Commit { event = 0; moved } }
  | Wire.Ack _ as m -> m
  | Wire.Batch parts -> Wire.Batch (Wire.Ae_request :: parts)
  | Wire.Traced t ->
      Wire.Traced { t with payload = Wire.Commit { event = 0; moved } }
  | Wire.Lpdr_pull _ as m -> m
  | Wire.Lpdr_push p ->
      Wire.Lpdr_push
        { p with view = Some (0, 4, [ (vid 0, 16); (vid 1, 16) ]) }
  | Wire.Lb_report r ->
      Wire.Lb_report { r with entries = sample_summary 9 :: r.entries }
  | Wire.Lb_proposal _ as m -> m
  | Wire.Lb_transfer _ as m -> m
  | Wire.Lb_swap _ as m -> m
  | Wire.Mt_root _ as m -> m
  | Wire.Mt_request r ->
      Wire.Mt_request { spans = Span.root :: r.spans }
  | Wire.Mt_frames f ->
      Wire.Mt_frames { frames = (Span.root, 1, 0xbeef, true) :: f.frames }
  | Wire.Mt_leaf l -> Wire.Mt_leaf { l with keys = (big, 0xf00d) :: l.keys }
  | Wire.Mt_want w -> Wire.Mt_want { w with keys = big :: w.keys }
  | Wire.Range_get _ as m -> m
  | Wire.Range_reply r ->
      Wire.Range_reply { r with cells = ("extra", cell big) :: r.cells }

(* One representative of every constructor (all four routed ops). *)
let all_messages =
  [
    Wire.Routed
      { point = 5; hops = 1; retries = 0; origin = 0;
        op = Wire.Op_create { newcomer = vid 2 } };
    Wire.Routed
      { point = 5; hops = 0; retries = 0; origin = 0;
        op = Wire.Op_put { key = "k"; value = "v"; token = 1 } };
    Wire.Routed
      { point = 5; hops = 0; retries = 1; origin = 0;
        op = Wire.Op_get { key = "k"; token = 2 } };
    Wire.Routed
      { point = 5; hops = 0; retries = 0; origin = 0;
        op = Wire.Op_sync { key = "k"; cell = cell "v" } };
    Wire.Create_at_group
      { group = Group_id.root; point = 5; newcomer = vid 2; origin = 0 };
    prepare ~split:None;
    Wire.Prepare_ack { event = 3; moved };
    Wire.Transfer
      { event = 3; to_vnode = vid 2; spans = [ Span.root ];
        data = [ ("k", cell "v") ] };
    Wire.All_received { event = 3 };
    Wire.Commit { event = 3; moved };
    Wire.Create_done { newcomer = vid 2 };
    Wire.Remove_request { leaving = vid 1; origin = 0; token = 3 };
    Wire.Remove_at_group
      { group = Group_id.root; leaving = vid 1; origin = 0; token = 3 };
    remove_prepare ~moves:[ { Plan.src = vid 1; dst = vid 0; n = 2 } ];
    Wire.Remove_done { token = 3; ok = true };
    Wire.Put_ack { token = 1; hint = None };
    Wire.Get_reply { token = 2; value = Some "v"; hint = None };
    Wire.Busy { token = 6 };
    Wire.Repl_put { token = 4; key = "k"; point = 5; cell = cell "v" };
    Wire.Repl_put_ack { token = 4 };
    Wire.Repl_get { token = 5; key = "k"; point = 5 };
    Wire.Repl_get_reply { token = 5; cell = Some (cell "v") };
    Wire.Repl_hinted
      { token = 4; target = 2; key = "k"; point = 5; cell = cell "v" };
    Wire.Hint_flush { key = "k"; point = 5; cell = cell "v" };
    Wire.Hint_ack { key = "k" };
    Wire.Repl_repair { key = "k"; point = 5; cell = cell "v" };
    Wire.Repl_digest { span = Span.root; count = 3; vhash = 0x5ca1e };
    Wire.Repl_sync_request { span = Span.root };
    Wire.Repl_sync { span = Span.root; cells = [ ("k", cell "v") ]; reply = true };
    Wire.Ae_request;
    Wire.Req { seq = 9; payload = Wire.All_received { event = 3 } };
    Wire.Ack { seq = 9; floor = 9 };
    Wire.Batch
      [ Wire.Put_ack { token = 1; hint = None };
        Wire.Ack { seq = 9; floor = 9 } ];
    Wire.Traced { trace = 1; span = 2; hop = 0; payload = Wire.Ae_request };
    Wire.Lpdr_pull { group = Group_id.root };
    Wire.Lpdr_push
      { group = Group_id.root; view = Some (0, 4, [ (vid 0, 16) ]) };
    Wire.Lb_report
      { origin = 1; pull = true; entries = [ sample_summary 1 ]; owns = [] };
    Wire.Lb_proposal { to_snode = 2; emergency = false };
    Wire.Lb_transfer
      { group = Group_id.root; hot = Span.root; from_vnode = vid 1;
        to_snode = 2; origin = 3 };
    Wire.Lb_swap
      { event = 3; hot = Span.root; from_vnode = vid 1; to_vnode = vid 2 };
    Wire.Mt_root { round = 1; span = Span.root; count = 9; vhash = 0xc0de };
    Wire.Mt_request { spans = [ Span.root ] };
    Wire.Mt_frames { frames = [ (Span.root, 4, 0xcafe, false) ] };
    Wire.Mt_leaf { span = Span.root; keys = [ ("k", 0xd00d) ] };
    Wire.Mt_want { span = Span.root; keys = [ "k" ] };
    Wire.Range_get { token = 7; lo = 0; hi = 1024 };
    Wire.Range_reply { token = 7; lo = 0; cells = [ ("k", cell "v") ] };
  ]

let test_complete_coverage () =
  (* Every constructor appears in the sweep exactly once, and the index
     space is dense: forgetting a sample (or the count bump that goes with
     a new constructor) fails here; forgetting the constructor entirely
     fails compilation of [canonical]/[inflate]. *)
  let indices = List.sort_uniq compare (List.map canonical all_messages) in
  check Alcotest.int "one sample per constructor" constructor_count
    (List.length indices);
  check Alcotest.bool "indices dense in [0, count)" true
    (List.for_all (fun i -> i >= 0 && i < constructor_count) indices);
  check Alcotest.int "no duplicate samples" constructor_count
    (List.length all_messages)

let test_every_constructor_sized () =
  List.iter
    (fun m ->
      check Alcotest.bool
        (Printf.sprintf "size of %s positive" (Wire.describe m))
        true
        (Wire.size_bytes m > 0))
    all_messages

let test_tags_distinct () =
  (* [Traced] is tag-transparent by design — traffic accounting by tag must
     not change when causal tracing is switched on — so it is excluded from
     the distinctness check (its tag is its payload's). *)
  let untraced =
    List.filter (function Wire.Traced _ -> false | _ -> true) all_messages
  in
  let tags = List.map Wire.describe untraced in
  List.iter
    (fun tag -> check Alcotest.bool "tag nonempty" true (String.length tag > 0))
    tags;
  let distinct = List.sort_uniq compare tags in
  check Alcotest.int "tags distinguish constructors" (List.length tags)
    (List.length distinct);
  check Alcotest.string "traced frames keep the payload tag" "ae-request"
    (Wire.describe
       (Wire.Traced { trace = 1; span = 2; hop = 0; payload = Wire.Ae_request }))

let test_inflate_monotonic () =
  (* Growing any variable-size payload must grow the estimate; fixed-size
     constructors inflate to themselves and stay put. *)
  List.iter
    (fun m ->
      let m' = inflate m in
      if m' = m then
        check Alcotest.int
          (Printf.sprintf "%s is fixed-size" (Wire.describe m))
          (Wire.size_bytes m) (Wire.size_bytes m')
      else
        check Alcotest.bool
          (Printf.sprintf "payload grows %s" (Wire.describe m))
          true
          (Wire.size_bytes m' > Wire.size_bytes m))
    all_messages

let test_payload_monotonic () =
  let size = Wire.size_bytes in
  let put key value =
    Wire.Routed
      { point = 0; hops = 0; retries = 0; origin = 0;
        op = Wire.Op_put { key; value; token = 0 } }
  in
  check Alcotest.int "put charges payload bytes"
    (size (put "k" "v") + 120)
    (size (put "k" (String.make 121 'x')));
  let transfer data =
    Wire.Transfer { event = 0; to_vnode = vid 2; spans = []; data }
  in
  check Alcotest.bool "transfer charges data" true
    (size (transfer [ ("key", cell (String.make 100 'x')) ])
    > size (transfer []) + 100);
  check Alcotest.bool "split enlarges prepare" true
    (size (prepare ~split:(Some sample_split)) > size (prepare ~split:None));
  check Alcotest.bool "moves enlarge remove-prepare" true
    (size (remove_prepare ~moves:[ { Plan.src = vid 1; dst = vid 0; n = 2 } ])
    > size (remove_prepare ~moves:[]));
  let push view = Wire.Lpdr_push { group = Group_id.root; view } in
  check Alcotest.bool "lpdr view counted" true
    (size (push (Some (0, 4, [ (vid 0, 16); (vid 1, 16) ])))
    > size (push None));
  let commit moved = Wire.Commit { event = 0; moved } in
  check Alcotest.bool "commit moves counted" true
    (size (commit moved) > size (commit []));
  check Alcotest.int "span context charges 20 bytes"
    (size Wire.Ae_request + 20)
    (size (Wire.Traced { trace = 1; span = 2; hop = 0; payload = Wire.Ae_request }));
  check Alcotest.bool "replica sets enlarge commits" true
    (size (commit [ (Span.root, vid 1, [ 1; 2; 3 ]) ])
    > size (commit [ (Span.root, vid 1, [ 1 ]) ]));
  (* Piggybacked routing fields are free when absent and charged when
     present: legacy traffic keeps its exact byte counts. *)
  let ack hint = Wire.Put_ack { token = 1; hint } in
  check Alcotest.int "absent hint is free"
    (size (ack None))
    (size (Wire.Get_reply { token = 1; value = None; hint = None }));
  check Alcotest.int "hint charges two entries"
    (size (ack None) + 32)
    (size (ack (Some (Span.root, vid 1))));
  let report owns =
    Wire.Lb_report { origin = 1; pull = false; entries = []; owns }
  in
  check Alcotest.int "owns charge two entries each"
    (size (report []) + 64)
    (size (report [ (Span.root, vid 1); (Span.root, vid 2) ]))

let test_req_framing () =
  (* The reliable frame adds a fixed header to any inner message and keeps
     its tag visible for tracing — checked for the whole sweep, so new
     messages cannot dodge the framing contract. *)
  List.iter
    (fun inner ->
      let framed = Wire.Req { seq = 1; payload = inner } in
      check Alcotest.int
        (Printf.sprintf "req header on %s is 16 bytes" (Wire.describe inner))
        (Wire.size_bytes inner + 16)
        (Wire.size_bytes framed);
      check Alcotest.string "req tag nests"
        ("req:" ^ Wire.describe inner)
        (Wire.describe framed))
    all_messages;
  check Alcotest.string "double framing nests twice" "req:req:commit"
    (Wire.describe
       (Wire.Req
          { seq = 2; payload = Wire.Req { seq = 1; payload = Wire.Commit { event = 3; moved } } }));
  check Alcotest.string "ack tag" "ack"
    (Wire.describe (Wire.Ack { seq = 1; floor = 1 }))

let suite =
  [
    Alcotest.test_case "sweep covers every constructor" `Quick
      test_complete_coverage;
    Alcotest.test_case "every constructor has positive size" `Quick
      test_every_constructor_sized;
    Alcotest.test_case "describe tags are distinct" `Quick test_tags_distinct;
    Alcotest.test_case "inflated payloads grow the estimate" `Quick
      test_inflate_monotonic;
    Alcotest.test_case "payload bytes are charged" `Quick
      test_payload_monotonic;
    Alcotest.test_case "reliable frame adds only a header" `Quick
      test_req_framing;
  ]
