(* Tests for Dht_workload: Keygen and Trace. *)

module Keygen = Dht_workload.Keygen
module Trace = Dht_workload.Trace
module Rng = Dht_prng.Rng

let check = Alcotest.check

let test_uniform_keys () =
  let rng = Rng.of_int 1 in
  let k = Keygen.uniform rng in
  check Alcotest.int "length" 16 (String.length k);
  String.iter
    (fun c ->
      check Alcotest.bool "hex charset" true
        ((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')))
    k;
  check Alcotest.bool "fresh each call" true (Keygen.uniform rng <> Keygen.uniform rng)

let test_sequential () =
  check Alcotest.string "format" "user:42" (Keygen.sequential ~prefix:"user:" 42)

let test_zipf_validation () =
  Alcotest.check_raises "n = 0" (Invalid_argument "Zipf.create: n must be positive")
    (fun () -> ignore (Keygen.Zipf.create ~n:0 ~s:1.));
  Alcotest.check_raises "negative s" (Invalid_argument "Zipf.create: s must be non-negative")
    (fun () -> ignore (Keygen.Zipf.create ~n:10 ~s:(-1.)))

let test_zipf_range_and_skew () =
  let z = Keygen.Zipf.create ~n:100 ~s:1.0 in
  let rng = Rng.of_int 3 in
  let counts = Array.make 101 0 in
  for _ = 1 to 20_000 do
    let r = Keygen.Zipf.sample z rng in
    check Alcotest.bool "rank in [1, 100]" true (r >= 1 && r <= 100);
    counts.(r) <- counts.(r) + 1
  done;
  check Alcotest.bool "rank 1 beats rank 10" true (counts.(1) > counts.(10));
  check Alcotest.bool "rank 1 beats rank 100" true (counts.(1) > 5 * counts.(100));
  (* Rank 1 should get about 1/H_100 ~ 19% of the mass. *)
  let share1 = float_of_int counts.(1) /. 20_000. in
  check Alcotest.bool (Printf.sprintf "share %.3f near 0.193" share1) true
    (abs_float (share1 -. 0.193) < 0.02)

let test_zipf_uniform_when_s0 () =
  let z = Keygen.Zipf.create ~n:4 ~s:0. in
  List.iter
    (fun r ->
      check (Alcotest.float 1e-9) "flat" 0.25 (Keygen.Zipf.expected_frequency z ~rank:r))
    [ 1; 2; 3; 4 ]

let test_zipf_frequencies_sum () =
  let z = Keygen.Zipf.create ~n:50 ~s:1.2 in
  let total = ref 0. in
  for r = 1 to 50 do
    let f = Keygen.Zipf.expected_frequency z ~rank:r in
    check Alcotest.bool "positive" true (f > 0.);
    total := !total +. f
  done;
  check (Alcotest.float 1e-9) "sums to 1" 1. !total;
  Alcotest.check_raises "bad rank" (Invalid_argument "Zipf.expected_frequency: rank")
    (fun () -> ignore (Keygen.Zipf.expected_frequency z ~rank:0))

let test_zipf_empirical_matches_cdf () =
  (* The heat report's planted workload: zipf(s = 0.99) over 1000 ranks.
     Pin the seeded sampler against the analytic law — per-rank frequency
     for the head, cumulative mass at a few cut points for the tail — so
     the "hot partition" the heat gate expects really is planted. *)
  let n = 1000 and s = 0.99 and draws = 50_000 in
  let z = Keygen.Zipf.create ~n ~s in
  let rng = Rng.of_int 42 in
  let counts = Array.make (n + 1) 0 in
  for _ = 1 to draws do
    let r = Keygen.Zipf.sample z rng in
    counts.(r) <- counts.(r) + 1
  done;
  let empirical r = float_of_int counts.(r) /. float_of_int draws in
  List.iter
    (fun rank ->
      let expected = Keygen.Zipf.expected_frequency z ~rank in
      let got = empirical rank in
      check Alcotest.bool
        (Printf.sprintf "rank %d: empirical %.4f vs analytic %.4f" rank got
           expected)
        true
        (abs_float (got -. expected) < 0.01 +. (0.15 *. expected)))
    [ 1; 2; 3; 5; 10 ];
  let cdf upto =
    let acc = ref 0. in
    for r = 1 to upto do
      acc := !acc +. Keygen.Zipf.expected_frequency z ~rank:r
    done;
    !acc
  in
  let empirical_cdf upto =
    let acc = ref 0 in
    for r = 1 to upto do
      acc := !acc + counts.(r)
    done;
    float_of_int !acc /. float_of_int draws
  in
  List.iter
    (fun upto ->
      let expected = cdf upto and got = empirical_cdf upto in
      check Alcotest.bool
        (Printf.sprintf "CDF(%d): empirical %.4f vs analytic %.4f" upto got
           expected)
        true
        (abs_float (got -. expected) < 0.01))
    [ 10; 100; 500; 1000 ];
  check (Alcotest.float 1e-9) "CDF closes at 1" 1. (cdf n)

let test_zipf_key () =
  let z = Keygen.Zipf.create ~n:10 ~s:1. in
  let k = Keygen.Zipf.key z (Rng.of_int 5) in
  check Alcotest.bool "item prefix" true (String.length k > 4 && String.sub k 0 4 = "item")

let test_hotspot () =
  let rng = Rng.of_int 7 in
  let hot = [| "h1"; "h2" |] in
  let hot_hits = ref 0 in
  let n = 10_000 in
  for _ = 1 to n do
    let k = Keygen.hotspot rng ~hot ~hot_fraction:0.8 ~cold:(fun () -> "cold") in
    if k = "h1" || k = "h2" then incr hot_hits
    else check Alcotest.string "cold path" "cold" k
  done;
  let ratio = float_of_int !hot_hits /. float_of_int n in
  check Alcotest.bool (Printf.sprintf "hot ratio %.3f near 0.8" ratio) true
    (abs_float (ratio -. 0.8) < 0.03);
  Alcotest.check_raises "no hot keys" (Invalid_argument "Keygen.hotspot: no hot keys")
    (fun () ->
      ignore (Keygen.hotspot rng ~hot:[||] ~hot_fraction:0.5 ~cold:(fun () -> "c")));
  Alcotest.check_raises "bad fraction"
    (Invalid_argument "Keygen.hotspot: fraction outside [0, 1]") (fun () ->
      ignore (Keygen.hotspot rng ~hot ~hot_fraction:1.5 ~cold:(fun () -> "c")))

let test_trace_bulk () =
  let a = Trace.bulk ~n:5 in
  check Alcotest.int "length" 5 (Array.length a);
  Array.iter (fun t -> check (Alcotest.float 0.) "zero" 0. t) a;
  Alcotest.check_raises "negative" (Invalid_argument "Trace.bulk: negative n")
    (fun () -> ignore (Trace.bulk ~n:(-1)))

let test_trace_uniform () =
  let a = Trace.uniform ~n:4 ~period:0.5 in
  check Alcotest.(array (float 1e-12)) "spacing" [| 0.5; 1.0; 1.5; 2.0 |] a;
  Alcotest.check_raises "bad period" (Invalid_argument "Trace.uniform: period must be positive")
    (fun () -> ignore (Trace.uniform ~n:2 ~period:0.))

let test_trace_poisson () =
  let a = Trace.poisson ~rng:(Rng.of_int 11) ~n:5000 ~rate:100. in
  check Alcotest.int "length" 5000 (Array.length a);
  Array.iteri
    (fun i t ->
      check Alcotest.bool "positive" true (t > 0.);
      if i > 0 then check Alcotest.bool "sorted" true (t >= a.(i - 1)))
    a;
  (* Mean inter-arrival 1/rate -> last arrival near n/rate. *)
  check Alcotest.bool
    (Printf.sprintf "span %.1f near 50" a.(4999))
    true
    (a.(4999) > 45. && a.(4999) < 55.)

let suite =
  [
    Alcotest.test_case "uniform keys" `Quick test_uniform_keys;
    Alcotest.test_case "sequential keys" `Quick test_sequential;
    Alcotest.test_case "zipf validation" `Quick test_zipf_validation;
    Alcotest.test_case "zipf range and skew" `Quick test_zipf_range_and_skew;
    Alcotest.test_case "zipf flat at s=0" `Quick test_zipf_uniform_when_s0;
    Alcotest.test_case "zipf frequencies sum to 1" `Quick
      test_zipf_frequencies_sum;
    Alcotest.test_case "zipf sampler matches the analytic CDF" `Quick
      test_zipf_empirical_matches_cdf;
    Alcotest.test_case "zipf key form" `Quick test_zipf_key;
    Alcotest.test_case "hotspot mix" `Quick test_hotspot;
    Alcotest.test_case "bulk trace" `Quick test_trace_bulk;
    Alcotest.test_case "uniform trace" `Quick test_trace_uniform;
    Alcotest.test_case "poisson trace" `Quick test_trace_poisson;
  ]
