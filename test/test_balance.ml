(* Tests for the active load-balancing subsystem: the pure gossip /
   directory modules in Dht_balance, the runtime's gossip convergence
   and crash semantics, and an end-to-end hot-partition swap run. *)

open Dht_core
module Runtime = Dht_snode.Runtime
module Engine = Dht_event_sim.Engine
module Summary = Dht_balance.Summary
module Gossip = Dht_balance.Gossip
module Directory = Dht_balance.Directory
module Policy = Dht_balance.Policy

let check = Alcotest.check

let summary ?(heat = 1.0) ?(queue = 0) ?(partitions = 8) ~origin ~version ()
    =
  Summary.make ~origin ~version ~heat ~queue ~partitions ~stamped:0.

(* --- Pure modules --- *)

let test_gossip_version_fence () =
  let g = Gossip.create () in
  check Alcotest.bool "first installs" true
    (Gossip.note g (summary ~origin:3 ~version:5 ()));
  check Alcotest.bool "older rejected" false
    (Gossip.note g (summary ~origin:3 ~version:4 ()));
  check Alcotest.bool "equal rejected" false
    (Gossip.note g (summary ~origin:3 ~version:5 ~heat:99. ()));
  check Alcotest.bool "fresher installs" true
    (Gossip.note g (summary ~origin:3 ~version:6 ~heat:2. ()));
  (match Gossip.find g 3 with
  | Some s ->
      check Alcotest.int "kept freshest" 6 s.Summary.version;
      check (Alcotest.float 0.) "freshest heat" 2. s.Summary.heat
  | None -> Alcotest.fail "entry vanished");
  check Alcotest.int "merge counts installs" 2
    (Gossip.merge g
       [
         summary ~origin:1 ~version:1 ();
         summary ~origin:3 ~version:2 ();
         (* stale: fenced *)
         summary ~origin:2 ~version:7 ();
       ]);
  check Alcotest.int "size" 3 (Gossip.size g);
  Gossip.reset g;
  check Alcotest.int "reset forgets" 0 (Gossip.size g)

let test_gossip_staleness () =
  let g = Gossip.create () in
  ignore (Gossip.note g (summary ~origin:0 ~version:10 ()));
  ignore (Gossip.note g (summary ~origin:1 ~version:7 ()));
  let truth = function 0 -> 10 | 1 -> 9 | _ -> 4 in
  let missing, lag =
    Gossip.staleness g ~origins:[ 0; 1; 2 ] ~version_of:truth
  in
  check Alcotest.int "origin 2 never heard of" 1 missing;
  check Alcotest.int "largest version gap" 2 lag

let test_directory_classify_and_pair () =
  let p = Policy.default in
  let d = Directory.create () in
  let note ~origin ~heat ~partitions =
    ignore (Directory.note d (summary ~origin ~version:1 ~heat ~partitions ()))
  in
  (* Average heat 1.0; 0 and 4 heavy, 2 and 3 light, 1 in the dead band. *)
  note ~origin:0 ~heat:2.0 ~partitions:8;
  note ~origin:1 ~heat:1.0 ~partitions:8;
  note ~origin:2 ~heat:0.2 ~partitions:8;
  note ~origin:3 ~heat:0.3 ~partitions:8;
  note ~origin:4 ~heat:1.5 ~partitions:8;
  let light, heavy = Directory.classify d p in
  check (Alcotest.list Alcotest.int) "heavy by descending heat" [ 0; 4 ]
    (List.map (fun (s : Summary.t) -> s.Summary.origin) heavy);
  check (Alcotest.list Alcotest.int) "light by ascending heat" [ 2; 3 ]
    (List.map (fun (s : Summary.t) -> s.Summary.origin) light);
  let pairs = Directory.pair ~light ~heavy in
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "k-th heaviest with k-th lightest"
    [ (0, 2); (4, 3) ]
    (List.map
       (fun ((h : Summary.t), (l : Summary.t)) ->
         (h.Summary.origin, l.Summary.origin))
       pairs)

let test_directory_single_partition_never_heavy () =
  (* A snode with one partition has nothing it could give up: the
     classifier must never mark it heavy, however hot it runs. *)
  let d = Directory.create () in
  ignore
    (Directory.note d (summary ~origin:0 ~version:1 ~heat:100. ~partitions:1 ()));
  ignore
    (Directory.note d (summary ~origin:1 ~version:1 ~heat:0.1 ~partitions:8 ()));
  let _, heavy = Directory.classify d Policy.default in
  check (Alcotest.list Alcotest.int) "no heavy" []
    (List.map (fun (s : Summary.t) -> s.Summary.origin) heavy)

let test_policy_validate () =
  Policy.validate Policy.default;
  Alcotest.check_raises "fanout"
    (Invalid_argument "Balance.Policy: fanout < 1") (fun () ->
      Policy.validate { Policy.default with fanout = 0 });
  Alcotest.check_raises "emergency below heavy"
    (Invalid_argument "Balance.Policy: emergency_factor below heavy_ratio")
    (fun () ->
      Policy.validate { Policy.default with emergency_factor = 1.1 })

(* --- Runtime gossip convergence --- *)

(* A small cluster driven for a bounded number of gossip rounds. *)
let gossip_cluster ~snodes ~seed ~policy =
  let rt =
    Runtime.create ~pmin:8
      ~approach:(Runtime.Local { vmin = 4 })
      ~balance:policy ~snodes ~seed ()
  in
  for i = 1 to (2 * snodes) - 1 do
    Runtime.create_vnode rt
      ~id:(Vnode_id.make ~snode:(i mod snodes) ~vnode:(i / snodes))
      ()
  done;
  Runtime.run rt;
  rt

let view_staleness rt ~snodes (entries : Summary.t list) =
  let origins = List.init snodes Fun.id in
  let missing =
    List.length
      (List.filter
         (fun o ->
           not
             (List.exists (fun (s : Summary.t) -> s.Summary.origin = o) entries))
         origins)
  in
  let lag =
    List.fold_left
      (fun acc (s : Summary.t) ->
        max acc (Runtime.lb_version rt s.Summary.origin - s.Summary.version))
      0 entries
  in
  (missing, lag)

let test_gossip_convergence_100_seeds () =
  (* Across 100 seeds: after a bounded run of push-pull rounds, every
     live snode's view (a) has heard from every origin and (b) is at
     most one gossip round stale — each round bumps the origin's version
     by one, so lag <= 1 is exactly "within one round". Version stamps
     never regress between segments. *)
  let snodes = 5 in
  let policy =
    (* Full fanout: the last round's direct pushes reach everyone, which
       is what makes the one-round staleness bound exact. *)
    { Policy.default with fanout = snodes - 1 }
  in
  for seed = 1 to 100 do
    let rt = gossip_cluster ~snodes ~seed ~policy in
    let engine = Runtime.engine rt in
    Runtime.arm_balancer rt
      ~until:(Engine.now engine +. (10. *. policy.Policy.gossip_interval));
    Runtime.run rt;
    let first = Runtime.lb_views rt in
    List.iter
      (fun (sid, entries) ->
        let missing, lag = view_staleness rt ~snodes entries in
        if missing > 0 then
          Alcotest.failf "seed %d: snode %d missing %d origins" seed sid
            missing;
        if lag > 1 then
          Alcotest.failf "seed %d: snode %d lags %d rounds" seed sid lag)
      first;
    (* Second segment: every (observer, origin) version moves forward. *)
    Runtime.arm_balancer rt
      ~until:(Engine.now engine +. (5. *. policy.Policy.gossip_interval));
    Runtime.run rt;
    List.iter
      (fun (sid, entries) ->
        let before = List.assoc sid first in
        List.iter
          (fun (s : Summary.t) ->
            match
              List.find_opt
                (fun (b : Summary.t) -> b.Summary.origin = s.Summary.origin)
                before
            with
            | Some b ->
                if s.Summary.version < b.Summary.version then
                  Alcotest.failf
                    "seed %d: snode %d regressed origin %d: %d -> %d" seed
                    sid s.Summary.origin b.Summary.version s.Summary.version
            | None ->
                Alcotest.failf "seed %d: snode %d forgot origin %d" seed sid
                  s.Summary.origin)
          entries)
      (Runtime.lb_views rt)
  done

(* --- Crash semantics --- *)

let test_crash_resets_soft_state_keeps_version () =
  let snodes = 4 in
  let rt = gossip_cluster ~snodes ~seed:7 ~policy:Policy.default in
  let engine = Runtime.engine rt in
  Runtime.arm_balancer rt ~until:(Engine.now engine +. 0.1);
  Runtime.run rt;
  let victim = 1 in
  let v_before = Runtime.lb_version rt victim in
  Alcotest.(check bool) "victim gossiped" true (v_before > 0);
  Alcotest.(check bool)
    "victim view populated" true
    (List.assoc victim (Runtime.lb_views rt) <> []);
  Runtime.crash_snode rt victim;
  Alcotest.(check (list reject))
    "gossip view is soft state: reset on crash" []
    (List.assoc victim (Runtime.lb_views rt));
  check Alcotest.int "version counter is durable" v_before
    (Runtime.lb_version rt victim);
  Runtime.restart_snode rt victim;
  Runtime.run rt;
  Runtime.arm_balancer rt ~until:(Engine.now engine +. 0.3);
  Runtime.run rt;
  Alcotest.(check bool)
    "restarted summary supersedes pre-crash gossip" true
    (Runtime.lb_version rt victim > v_before)

let test_heat_cells_reset_on_crash () =
  (* Regression: per-partition heat EWMA cells are soft state like the
     RTO estimators — a crash must drop the crashed snode's cells (its
     counters restart from zero) while every other snode's survive. *)
  let snodes = 4 in
  let rt =
    Runtime.create ~pmin:8
      ~approach:(Runtime.Local { vmin = 4 })
      ~heat:true ~snodes ~seed:3 ()
  in
  for i = 1 to (2 * snodes) - 1 do
    Runtime.create_vnode rt
      ~id:(Vnode_id.make ~snode:(i mod snodes) ~vnode:(i / snodes))
      ()
  done;
  Runtime.run rt;
  for k = 1 to 400 do
    Runtime.put rt ~via:(k mod snodes)
      ~key:(Printf.sprintf "key%d" k)
      ~value:"v" ()
  done;
  Runtime.run rt;
  let victim = 2 in
  let owned_by sid =
    List.filter
      (fun (r : Runtime.heat_row) -> r.Runtime.hr_owner = sid)
      (Runtime.heat_rows rt)
  in
  let hot_victim = owned_by victim and hot_other = owned_by 0 in
  Alcotest.(check bool) "victim heated before crash" true (hot_victim <> []);
  Alcotest.(check bool) "snode 0 heated before crash" true (hot_other <> []);
  Runtime.crash_snode rt victim;
  check Alcotest.int "victim's cells dropped" 0 (List.length (owned_by victim));
  check Alcotest.int "other snodes' cells survive"
    (List.length hot_other)
    (List.length (owned_by 0))

(* --- End to end --- *)

let test_skew_swaps_reduce_gini () =
  (* A scaled-down acceptance run: same seeded Zipf stream with the
     balancer off then on. Swaps must fire, cut the per-snode heat Gini,
     keep the whole invariant battery green and lose no acked write. *)
  let r =
    Dht_experiments.Extensions.skew ~snodes:6 ~vnodes:12 ~keys:400
      ~rate:5000. ~duration:0.8 ~seed:11 ()
  in
  let open Dht_experiments.Extensions in
  Alcotest.(check bool)
    "balancer executed swaps" true
    (r.sk_on.sk_lb.Runtime.lbs_transfers > 0);
  Alcotest.(check bool)
    "gini reduced" true
    (r.sk_on.sk_gini < r.sk_off.sk_gini);
  List.iter
    (fun (name, (x : skew_run)) ->
      check (Alcotest.list Alcotest.string)
        (name ^ ": invariant battery") [] x.sk_findings;
      check (Alcotest.list Alcotest.string)
        (name ^ ": linearizability") [] x.sk_linear;
      check Alcotest.int (name ^ ": lost acked writes") 0 x.sk_lost)
    [ ("off", r.sk_off); ("on", r.sk_on) ]

let suite =
  [
    Alcotest.test_case "gossip version fence" `Quick test_gossip_version_fence;
    Alcotest.test_case "gossip staleness oracle" `Quick test_gossip_staleness;
    Alcotest.test_case "directory classify + pair" `Quick
      test_directory_classify_and_pair;
    Alcotest.test_case "single partition never heavy" `Quick
      test_directory_single_partition_never_heavy;
    Alcotest.test_case "policy validation" `Quick test_policy_validate;
    Alcotest.test_case "gossip converges within one round (100 seeds)" `Slow
      test_gossip_convergence_100_seeds;
    Alcotest.test_case "crash resets view, keeps version" `Quick
      test_crash_resets_soft_state_keeps_version;
    Alcotest.test_case "heat cells reset on crash" `Quick
      test_heat_cells_reset_on_crash;
    Alcotest.test_case "skewed run: swaps cut gini, battery green" `Slow
      test_skew_swaps_reduce_gini;
  ]
