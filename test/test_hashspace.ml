(* Tests for Dht_hashspace: Space, Span, Coverage, Point_map. *)

module Space = Dht_hashspace.Space
module Span = Dht_hashspace.Span
module Coverage = Dht_hashspace.Coverage
module Point_map = Dht_hashspace.Point_map
module Rng = Dht_prng.Rng

let check = Alcotest.check
let sp = Space.create ~bits:16

let span_testable =
  Alcotest.testable Span.pp Span.equal

(* --- Space --- *)

let test_space_validation () =
  Alcotest.check_raises "bits 0" (Invalid_argument "Space.create: bits outside [1, 62]")
    (fun () -> ignore (Space.create ~bits:0));
  Alcotest.check_raises "bits 63" (Invalid_argument "Space.create: bits outside [1, 62]")
    (fun () -> ignore (Space.create ~bits:63));
  check Alcotest.int "size 2^16" 65536 (Space.size sp);
  check Alcotest.int "default bits" 52 (Space.bits Space.default)

let test_space_contains () =
  check Alcotest.bool "0 in" true (Space.contains sp 0);
  check Alcotest.bool "max in" true (Space.contains sp 65535);
  check Alcotest.bool "size out" false (Space.contains sp 65536);
  check Alcotest.bool "negative out" false (Space.contains sp (-1))

let test_space_quota () =
  check (Alcotest.float 1e-12) "half" 0.5 (Space.quota sp 32768);
  check (Alcotest.float 1e-12) "all" 1. (Space.quota sp 65536)

(* --- Span --- *)

let test_span_root () =
  check Alcotest.int "root level" 0 (Span.level Span.root);
  check Alcotest.int "root start" 0 (Span.start sp Span.root);
  check Alcotest.int "root size" 65536 (Span.size sp Span.root);
  check (Alcotest.float 0.) "root quota" 1. (Span.quota sp Span.root)

let test_span_validation () =
  Alcotest.check_raises "negative level" (Invalid_argument "Span.make: level outside [0, Bh]")
    (fun () -> ignore (Span.make sp ~level:(-1) ~index:0));
  Alcotest.check_raises "level > bits" (Invalid_argument "Span.make: level outside [0, Bh]")
    (fun () -> ignore (Span.make sp ~level:17 ~index:0));
  Alcotest.check_raises "index too big"
    (Invalid_argument "Span.make: index outside [0, 2^level)") (fun () ->
      ignore (Span.make sp ~level:2 ~index:4))

let test_span_split () =
  let s = Span.make sp ~level:3 ~index:5 in
  let a, b = Span.split sp s in
  check Alcotest.int "left level" 4 (Span.level a);
  check Alcotest.int "left index" 10 (Span.index a);
  check Alcotest.int "right index" 11 (Span.index b);
  check Alcotest.int "left start = parent start" (Span.start sp s) (Span.start sp a);
  check Alcotest.int "halves abut" (Span.stop sp a) (Span.start sp b);
  check Alcotest.int "right stop = parent stop" (Span.stop sp s) (Span.stop sp b);
  check Alcotest.int "half size" (Span.size sp s / 2) (Span.size sp a);
  let deepest = Span.make sp ~level:16 ~index:0 in
  Alcotest.check_raises "split at max level"
    (Invalid_argument "Span.split: already at maximum level") (fun () ->
      ignore (Span.split sp deepest))

let test_span_parent_sibling () =
  let s = Span.make sp ~level:3 ~index:5 in
  let a, b = Span.split sp s in
  check (Alcotest.option span_testable) "parent of left" (Some s) (Span.parent a);
  check (Alcotest.option span_testable) "parent of right" (Some s) (Span.parent b);
  check (Alcotest.option span_testable) "sibling of left" (Some b) (Span.sibling a);
  check (Alcotest.option span_testable) "sibling of right" (Some a) (Span.sibling b);
  check (Alcotest.option span_testable) "root parent" None (Span.parent Span.root);
  check (Alcotest.option span_testable) "root sibling" None (Span.sibling Span.root)

let test_span_contains () =
  let s = Span.make sp ~level:4 ~index:3 in
  let st = Span.start sp s in
  check Alcotest.bool "start" true (Span.contains sp s st);
  check Alcotest.bool "last" true (Span.contains sp s (Span.stop sp s - 1));
  check Alcotest.bool "before" false (Span.contains sp s (st - 1));
  check Alcotest.bool "after" false (Span.contains sp s (Span.stop sp s))

let test_span_overlap () =
  let parent = Span.make sp ~level:2 ~index:1 in
  let child = Span.make sp ~level:4 ~index:5 in
  (* child [20480,24576) inside parent [16384,32768) *)
  check Alcotest.bool "ancestor overlaps" true (Span.overlap parent child);
  check Alcotest.bool "symmetric" true (Span.overlap child parent);
  let other = Span.make sp ~level:2 ~index:2 in
  check Alcotest.bool "disjoint" false (Span.overlap parent other);
  check Alcotest.bool "self" true (Span.overlap parent parent)

let test_span_compare () =
  let a = Span.make sp ~level:2 ~index:0 in
  let b = Span.make sp ~level:2 ~index:1 in
  let a_child = Span.make sp ~level:3 ~index:0 in
  check Alcotest.bool "by start" true (Span.compare a b < 0);
  check Alcotest.bool "same start, coarser first" true (Span.compare a a_child < 0);
  check Alcotest.int "equal" 0 (Span.compare a a)

let prop_of_point_inverse =
  QCheck.Test.make ~name:"of_point finds the covering span" ~count:500
    QCheck.(pair (int_bound 65535) (int_bound 16))
    (fun (p, level) ->
      let s = Span.of_point sp ~level p in
      Span.contains sp s p && Span.level s = level)

let prop_split_partitions =
  QCheck.Test.make ~name:"split partitions the parent" ~count:500
    QCheck.(pair (int_bound 65535) (int_bound 15))
    (fun (p, level) ->
      let s = Span.of_point sp ~level p in
      let a, b = Span.split sp s in
      (* Every point of the parent is in exactly one half. *)
      let q = Span.start sp s + (Span.size sp s / 2) in
      Span.contains sp a (Span.start sp s)
      && (not (Span.contains sp a q))
      && Span.contains sp b q
      && Span.size sp a + Span.size sp b = Span.size sp s)

(* --- Coverage --- *)

let level_tiling level =
  List.init (1 lsl level) (fun i -> Span.make sp ~level ~index:i)

let test_coverage_ok () =
  (match Coverage.check sp (level_tiling 4) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "unexpected: %a" Coverage.pp_error e);
  check (Alcotest.float 1e-12) "quota 1" 1. (Coverage.total_quota sp (level_tiling 3))

let test_coverage_mixed_levels () =
  (* Root split into [0, 1/2) at level 1 and two level-2 quarters. *)
  let spans =
    [
      Span.make sp ~level:1 ~index:0;
      Span.make sp ~level:2 ~index:2;
      Span.make sp ~level:2 ~index:3;
    ]
  in
  match Coverage.check sp spans with
  | Ok () -> ()
  | Error e -> Alcotest.failf "mixed tiling rejected: %a" Coverage.pp_error e

let test_coverage_gap () =
  let spans = [ Span.make sp ~level:1 ~index:0 ] in
  match Coverage.check sp spans with
  | Error (Coverage.Gap _) -> ()
  | Ok () -> Alcotest.fail "gap not detected"
  | Error e -> Alcotest.failf "wrong error: %a" Coverage.pp_error e

let test_coverage_overlap () =
  let spans =
    [ Span.make sp ~level:1 ~index:0; Span.make sp ~level:2 ~index:1;
      Span.make sp ~level:1 ~index:1 ]
  in
  match Coverage.check sp spans with
  | Error (Coverage.Overlap _) -> ()
  | Ok () -> Alcotest.fail "overlap not detected"
  | Error e -> Alcotest.failf "wrong error: %a" Coverage.pp_error e

let test_coverage_empty () =
  match Coverage.check sp [] with
  | Error Coverage.Empty -> ()
  | _ -> Alcotest.fail "empty not detected"

(* --- Point_map --- *)

let test_point_map_basics () =
  let m = Point_map.create sp in
  check Alcotest.int "empty" 0 (Point_map.cardinal m);
  let a = Span.make sp ~level:1 ~index:0 in
  let b = Span.make sp ~level:1 ~index:1 in
  Point_map.add m a "left";
  Point_map.add m b "right";
  check Alcotest.int "two spans" 2 (Point_map.cardinal m);
  let s, v = Point_map.find_point m 0 in
  check span_testable "span of 0" a s;
  check Alcotest.string "owner of 0" "left" v;
  let _, v = Point_map.find_point m 65535 in
  check Alcotest.string "owner of last" "right" v;
  let _, v = Point_map.find_point m 32768 in
  check Alcotest.string "boundary" "right" v;
  let _, v = Point_map.find_point m 32767 in
  check Alcotest.string "boundary - 1" "left" v

let test_point_map_overlap_rejected () =
  let m = Point_map.create sp in
  Point_map.add m (Span.make sp ~level:1 ~index:0) 1;
  Alcotest.check_raises "same span" (Invalid_argument "Point_map.add: overlapping span")
    (fun () -> Point_map.add m (Span.make sp ~level:1 ~index:0) 2);
  Alcotest.check_raises "child span" (Invalid_argument "Point_map.add: overlapping span")
    (fun () -> Point_map.add m (Span.make sp ~level:2 ~index:1) 2);
  Alcotest.check_raises "parent span" (Invalid_argument "Point_map.add: overlapping span")
    (fun () -> Point_map.add m Span.root 2)

let test_point_map_remove () =
  let m = Point_map.create sp in
  let a = Span.make sp ~level:1 ~index:0 in
  Point_map.add m a 1;
  Alcotest.check_raises "remove wrong level" Not_found (fun () ->
      Point_map.remove m (Span.make sp ~level:2 ~index:0));
  Point_map.remove m a;
  check Alcotest.int "removed" 0 (Point_map.cardinal m);
  Alcotest.check_raises "find in empty" Not_found (fun () ->
      ignore (Point_map.find_point m 0))

let test_point_map_split_replace () =
  let m = Point_map.create sp in
  Point_map.add m Span.root "owner";
  Point_map.split m Span.root;
  check Alcotest.int "two halves" 2 (Point_map.cardinal m);
  let s, v = Point_map.find_point m 40000 in
  check Alcotest.string "owner preserved" "owner" v;
  check Alcotest.int "level 1" 1 (Span.level s);
  Point_map.replace_owner m s "new";
  let _, v = Point_map.find_point m 40000 in
  check Alcotest.string "owner replaced" "new" v;
  let _, v = Point_map.find_point m 0 in
  check Alcotest.string "other half untouched" "owner" v

let test_point_map_iter_order () =
  let m = Point_map.create sp in
  List.iter
    (fun i -> Point_map.add m (Span.make sp ~level:2 ~index:i) i)
    [ 2; 0; 3; 1 ];
  let order = ref [] in
  Point_map.iter m (fun _ v -> order := v :: !order);
  check Alcotest.(list int) "ascending start" [ 0; 1; 2; 3 ] (List.rev !order);
  check Alcotest.int "spans list" 4 (List.length (Point_map.spans m))

let test_point_map_overlapping () =
  let m = Point_map.create sp in
  (* Tiling: [0,1/2) at level 1, quarters [1/2,3/4) and [3/4,1). *)
  Point_map.add m (Span.make sp ~level:1 ~index:0) "half";
  Point_map.add m (Span.make sp ~level:2 ~index:2) "q3";
  Point_map.add m (Span.make sp ~level:2 ~index:3) "q4";
  (* A level-2 span inside the coarse half overlaps only it. *)
  let hits = Point_map.overlapping m (Span.make sp ~level:2 ~index:1) in
  check Alcotest.(list string) "inside coarse entry" [ "half" ]
    (List.map snd hits);
  (* The right half overlaps both quarters. *)
  let hits = Point_map.overlapping m (Span.make sp ~level:1 ~index:1) in
  check Alcotest.(list string) "both quarters" [ "q3"; "q4" ]
    (List.map snd hits);
  (* The root overlaps everything, in start order. *)
  let hits = Point_map.overlapping m Span.root in
  check Alcotest.(list string) "everything" [ "half"; "q3"; "q4" ]
    (List.map snd hits)

let prop_random_tiling_lookup =
  (* Build a random dyadic tiling by repeatedly splitting a random span,
     then check that lookups agree with Span.contains and that the tiling
     is a valid coverage. *)
  QCheck.Test.make ~name:"random dyadic tiling routes every point" ~count:60
    QCheck.small_int
    (fun seed ->
      let rng = Rng.of_int seed in
      let m = Point_map.create sp in
      Point_map.add m Span.root 0;
      let splits = 1 + Rng.int rng 40 in
      for i = 1 to splits do
        let p = Rng.int rng (Space.size sp) in
        let s, _ = Point_map.find_point m p in
        if Span.level s < 10 then begin
          Point_map.split m s;
          let s', _ = Point_map.find_point m p in
          ignore s';
          Point_map.replace_owner m s' i
        end
      done;
      (match Coverage.check sp (Point_map.spans m) with
      | Ok () -> ()
      | Error e -> QCheck.Test.fail_reportf "coverage: %a" Coverage.pp_error e);
      List.for_all
        (fun _ ->
          let p = Rng.int rng (Space.size sp) in
          let s, _ = Point_map.find_point m p in
          Span.contains sp s p)
        (List.init 50 Fun.id))

let test_point_map_learn () =
  let m = Point_map.create sp in
  Point_map.add m Span.root "old";
  (* Learning a quarter inside the root entry decomposes the remainder
     along the dyadic path: sibling half and sibling quarter keep "old". *)
  Point_map.learn m (Span.make sp ~level:2 ~index:1) "new";
  check Alcotest.int "three fragments" 3 (Point_map.cardinal m);
  check Alcotest.string "learned span routes" "new"
    (snd (Point_map.find_point m (Space.size sp / 4)));
  check Alcotest.string "left quarter keeps old owner" "old"
    (snd (Point_map.find_point m 0));
  check Alcotest.string "right half keeps old owner" "old"
    (snd (Point_map.find_point m (Space.size sp / 2)));
  (match Coverage.check sp (Point_map.spans m) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "hole after learn: %a" Coverage.pp_error e);
  (* Learning a coarser span evicts everything under it wholesale. *)
  Point_map.learn m (Span.make sp ~level:1 ~index:0) "coarse";
  check Alcotest.int "finer entries evicted" 2 (Point_map.cardinal m);
  check Alcotest.string "coarse owner routes" "coarse"
    (snd (Point_map.find_point m 0))

let prop_learn_matches_evict_reinsert =
  (* [learn] must be observationally equal to the reference implementation:
     evict every overlapping entry, re-add the dyadic remainder of coarser
     ones under their old value, insert the new span. *)
  QCheck.Test.make ~name:"learn = evict + dyadic re-insert" ~count:100
    QCheck.small_int
    (fun seed ->
      let rng = Rng.of_int seed in
      let reference m span value =
        let old = Point_map.overlapping m span in
        List.iter
          (fun (s, prev) ->
            Point_map.remove m s;
            if Span.level s < Span.level span then begin
              let rec keep_rest s =
                if not (Span.equal s span) then begin
                  let a, b = Span.split sp s in
                  if Span.overlap a span then begin
                    Point_map.add m b prev;
                    keep_rest a
                  end
                  else begin
                    Point_map.add m a prev;
                    keep_rest b
                  end
                end
              in
              keep_rest s
            end)
          old;
        Point_map.add m span value
      in
      let a = Point_map.create sp and b = Point_map.create sp in
      Point_map.add a Span.root (-1);
      Point_map.add b Span.root (-1);
      for i = 0 to 30 do
        let level = 1 + Rng.int rng 6 in
        let index = Rng.int rng (1 lsl level) in
        let span = Span.make sp ~level ~index in
        Point_map.learn a span i;
        reference b span i
      done;
      let dump m =
        List.map
          (fun (s, v) -> (Span.level s, Span.index s, v))
          (Point_map.to_list m)
      in
      if dump a <> dump b then QCheck.Test.fail_reportf "tries diverged";
      Point_map.cardinal a = Point_map.cardinal b)

let suite =
  [
    Alcotest.test_case "space validation" `Quick test_space_validation;
    Alcotest.test_case "space contains" `Quick test_space_contains;
    Alcotest.test_case "space quota" `Quick test_space_quota;
    Alcotest.test_case "span root" `Quick test_span_root;
    Alcotest.test_case "span validation" `Quick test_span_validation;
    Alcotest.test_case "span split" `Quick test_span_split;
    Alcotest.test_case "span parent/sibling" `Quick test_span_parent_sibling;
    Alcotest.test_case "span contains" `Quick test_span_contains;
    Alcotest.test_case "span overlap" `Quick test_span_overlap;
    Alcotest.test_case "span compare" `Quick test_span_compare;
    QCheck_alcotest.to_alcotest prop_of_point_inverse;
    QCheck_alcotest.to_alcotest prop_split_partitions;
    Alcotest.test_case "coverage ok" `Quick test_coverage_ok;
    Alcotest.test_case "coverage mixed levels" `Quick test_coverage_mixed_levels;
    Alcotest.test_case "coverage gap" `Quick test_coverage_gap;
    Alcotest.test_case "coverage overlap" `Quick test_coverage_overlap;
    Alcotest.test_case "coverage empty" `Quick test_coverage_empty;
    Alcotest.test_case "point map basics" `Quick test_point_map_basics;
    Alcotest.test_case "point map rejects overlap" `Quick
      test_point_map_overlap_rejected;
    Alcotest.test_case "point map remove" `Quick test_point_map_remove;
    Alcotest.test_case "point map split/replace" `Quick
      test_point_map_split_replace;
    Alcotest.test_case "point map iteration order" `Quick
      test_point_map_iter_order;
    Alcotest.test_case "point map overlapping" `Quick test_point_map_overlapping;
    QCheck_alcotest.to_alcotest prop_random_tiling_lookup;
    Alcotest.test_case "point map learn" `Quick test_point_map_learn;
    QCheck_alcotest.to_alcotest prop_learn_matches_evict_reinsert;
  ]
