(* Tests for Dht_snode: the pure planner and the distributed runtime. *)

open Dht_core
module Plan = Dht_snode.Plan
module Runtime = Dht_snode.Runtime
module Engine = Dht_event_sim.Engine
module Rng = Dht_prng.Rng

let check = Alcotest.check
let vid i = Vnode_id.make ~snode:i ~vnode:0

(* --- Plan --- *)

let test_plan_bootstrap_growth () =
  (* One vnode at pmin: the plan must split-all and hand half over. *)
  let p = Plan.creation ~pmin:8 ~counts:[ (vid 0, 8) ] ~newcomer:(vid 1) in
  check Alcotest.bool "split" true p.Plan.split_all;
  check Alcotest.int "newcomer gets half" 8 p.Plan.newcomer_count;
  check Alcotest.(list (pair bool int)) "final counts"
    [ (true, 8); (true, 8) ]
    (List.map (fun (_, c) -> (true, c)) p.Plan.final_counts)

let test_plan_no_split_when_uneven () =
  let counts = [ (vid 0, 11); (vid 1, 11); (vid 2, 10) ] in
  let p = Plan.creation ~pmin:8 ~counts ~newcomer:(vid 3) in
  check Alcotest.bool "no split" false p.Plan.split_all;
  check Alcotest.int "total conserved" 32
    (List.fold_left (fun acc (_, c) -> acc + c) 0 p.Plan.final_counts);
  (* Greedy equalizes: final spread <= 1. *)
  let cs = List.map snd p.Plan.final_counts in
  let mn = List.fold_left min max_int cs and mx = List.fold_left max 0 cs in
  check Alcotest.bool "spread" true (mx - mn <= 1)

let test_plan_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Plan.creation: empty LPDR")
    (fun () -> ignore (Plan.creation ~pmin:8 ~counts:[] ~newcomer:(vid 0)));
  Alcotest.check_raises "newcomer present"
    (Invalid_argument "Plan.creation: newcomer already in LPDR") (fun () ->
      ignore (Plan.creation ~pmin:8 ~counts:[ (vid 0, 8) ] ~newcomer:(vid 0)));
  Alcotest.check_raises "count out of bounds"
    (Invalid_argument "Plan.creation: count outside [Pmin, Pmax]") (fun () ->
      ignore (Plan.creation ~pmin:8 ~counts:[ (vid 0, 20) ] ~newcomer:(vid 1)))

let prop_plan_matches_live_balancer =
  (* Growing a group vnode-by-vnode: the pure planner's final count
     multiset must equal the live Balancer's at every step. *)
  QCheck.Test.make ~name:"plan = live balancer (count multisets)" ~count:50
    QCheck.(pair (int_range 1 60) (int_range 0 2))
    (fun (n, pmin_exp) ->
      let pmin = 8 lsl pmin_exp in
      let sp = Dht_hashspace.Space.create ~bits:40 in
      let params = Params.global ~space:sp ~pmin () in
      let v0 = Vnode.make ~id:(vid 0) ~group:Group_id.root in
      let b =
        Balancer.bootstrap ~params ~group:Group_id.root ~vnode:v0
          ~notify:(fun _ -> ())
      in
      let ok = ref true in
      for i = 1 to n do
        let counts =
          Array.to_list
            (Array.map (fun v -> (v.Vnode.id, v.Vnode.count)) (Balancer.vnodes b))
        in
        let plan = Plan.creation ~pmin ~counts ~newcomer:(vid i) in
        Balancer.add_vnode b (Vnode.make ~id:(vid i) ~group:Group_id.root);
        let live =
          Balancer.counts b |> Array.to_list |> List.sort compare
        in
        let planned = List.map snd plan.Plan.final_counts |> List.sort compare in
        if live <> planned then ok := false
      done;
      !ok)

(* --- Runtime --- *)

let audit_ok rt label =
  match Runtime.audit rt with
  | Ok () -> ()
  | Error es -> Alcotest.failf "%s:\n%s" label (String.concat "\n" es)

let test_runtime_bootstrap () =
  let rt = Runtime.create ~pmin:8 ~approach:(Runtime.Local { vmin = 4 }) ~snodes:4 ~seed:1 () in
  audit_ok rt "bootstrap";
  check Alcotest.int "one vnode" 1 (Runtime.vnode_count rt);
  check (Alcotest.float 0.) "balanced" 0. (Runtime.sigma_qv rt)

let test_runtime_sequential_growth () =
  let rt = Runtime.create ~pmin:8 ~approach:(Runtime.Local { vmin = 4 }) ~snodes:8 ~seed:2 () in
  for i = 1 to 40 do
    Runtime.create_vnode rt ~id:(Vnode_id.make ~snode:(i mod 8) ~vnode:(i / 8)) ();
    Runtime.run rt;
    check Alcotest.int
      (Printf.sprintf "creation %d completed" i)
      i (Runtime.completed_creations rt);
    audit_ok rt (Printf.sprintf "after creation %d" i)
  done;
  check Alcotest.int "no pending" 0 (Runtime.pending_operations rt);
  check Alcotest.bool "sigma reasonable" true (Runtime.sigma_qv rt < 40.)

let test_runtime_concurrent_burst () =
  (* All creation requests in flight at once: group locks, stale caches and
     retries must still converge to a clean global state. *)
  let rt = Runtime.create ~pmin:8 ~approach:(Runtime.Local { vmin = 4 }) ~snodes:16 ~seed:3 () in
  for i = 1 to 80 do
    Runtime.create_vnode rt
      ~id:(Vnode_id.make ~snode:(i mod 16) ~vnode:(i / 16))
      ()
  done;
  Runtime.run rt;
  check Alcotest.int "all completed" 80 (Runtime.completed_creations rt);
  check Alcotest.int "none pending" 0 (Runtime.pending_operations rt);
  audit_ok rt "after burst"

let test_runtime_data_plane () =
  let rt = Runtime.create ~pmin:8 ~approach:(Runtime.Local { vmin = 4 }) ~snodes:8 ~seed:4 () in
  for i = 1 to 15 do
    Runtime.create_vnode rt ~id:(Vnode_id.make ~snode:(i mod 8) ~vnode:(i / 8)) ()
  done;
  Runtime.run rt;
  for i = 0 to 199 do
    Runtime.put rt ~via:(i mod 8)
      ~key:(Printf.sprintf "key%d" i)
      ~value:(string_of_int i) ()
  done;
  Runtime.run rt;
  check Alcotest.int "puts done" 200 (Runtime.completed_puts rt);
  let wrong = ref 0 in
  for i = 0 to 199 do
    Runtime.get rt ~via:((i + 3) mod 8)
      ~key:(Printf.sprintf "key%d" i)
      (fun v -> if v <> Some (string_of_int i) then incr wrong)
  done;
  Runtime.run rt;
  check Alcotest.int "gets done" 200 (Runtime.completed_gets rt);
  check Alcotest.int "all values correct" 0 !wrong;
  audit_ok rt "after data ops"

let test_runtime_ops_during_growth () =
  (* Reads and writes issued while balancing events are in flight must all
     complete correctly (migration + stale-cache forwarding + backoff). *)
  let rt = Runtime.create ~pmin:8 ~approach:(Runtime.Local { vmin = 4 }) ~snodes:8 ~seed:5 () in
  for i = 0 to 299 do
    Runtime.put rt ~via:(i mod 8)
      ~key:(Printf.sprintf "k%d" i)
      ~value:(string_of_int i) ()
  done;
  Runtime.run rt;
  let wrong = ref 0 in
  for i = 1 to 30 do
    Runtime.create_vnode rt ~id:(Vnode_id.make ~snode:(i mod 8) ~vnode:(i / 8)) ();
    (* Interleave reads with the creation traffic. *)
    for j = 0 to 9 do
      let k = ((i * 10) + j) mod 300 in
      Runtime.get rt ~via:(j mod 8)
        ~key:(Printf.sprintf "k%d" k)
        (fun v -> if v <> Some (string_of_int k) then incr wrong)
    done
  done;
  Runtime.run rt;
  check Alcotest.int "creations done" 30 (Runtime.completed_creations rt);
  check Alcotest.int "gets done" 300 (Runtime.completed_gets rt);
  check Alcotest.int "no wrong read" 0 !wrong;
  check Alcotest.int "nothing pending" 0 (Runtime.pending_operations rt);
  audit_ok rt "after growth under load"

let test_runtime_sigma_tracks_oracle_band () =
  (* The distributed runtime must land in the same balance band as the
     centralized oracle at the same scale (it is the same algorithm). *)
  let rt = Runtime.create ~pmin:8 ~approach:(Runtime.Local { vmin = 8 }) ~snodes:16 ~seed:6 () in
  for i = 1 to 255 do
    Runtime.create_vnode rt
      ~id:(Vnode_id.make ~snode:(i mod 16) ~vnode:(i / 16))
      ()
  done;
  Runtime.run rt;
  audit_ok rt "256 vnodes";
  let sigma = Runtime.sigma_qv rt in
  check Alcotest.bool
    (Printf.sprintf "sigma %.2f in the (8,8)-configuration band" sigma)
    true
    (sigma > 5. && sigma < 45.)

let test_runtime_messages_counted () =
  let rt = Runtime.create ~pmin:8 ~approach:(Runtime.Local { vmin = 4 }) ~snodes:4 ~seed:7 () in
  Runtime.create_vnode rt ~id:(vid 1) ();
  Runtime.run rt;
  let msgs = Dht_event_sim.Network.messages (Runtime.network rt) in
  check Alcotest.bool (Printf.sprintf "%d messages flowed" msgs) true (msgs > 0)

let test_runtime_validation () =
  Alcotest.check_raises "no snodes"
    (Invalid_argument "Runtime.create: need at least one snode") (fun () ->
      ignore (Runtime.create ~snodes:0 ~seed:1 ()));
  let rt = Runtime.create ~snodes:2 ~seed:1 () in
  Alcotest.check_raises "initiator range"
    (Invalid_argument "Runtime.create_vnode: initiator out of range") (fun () ->
      Runtime.create_vnode rt ~initiator:5 ~id:(vid 1) ())

let test_runtime_deterministic () =
  let final seed =
    let rt = Runtime.create ~pmin:8 ~approach:(Runtime.Local { vmin = 4 }) ~snodes:8 ~seed () in
    for i = 1 to 50 do
      Runtime.create_vnode rt ~id:(Vnode_id.make ~snode:(i mod 8) ~vnode:(i / 8)) ()
    done;
    Runtime.run rt;
    (Runtime.sigma_qv rt, Dht_event_sim.Network.messages (Runtime.network rt))
  in
  check
    (Alcotest.pair (Alcotest.float 0.) Alcotest.int)
    "same seed, same simulation" (final 11) (final 11)

(* --- Wire --- *)

let test_wire_sizes () =
  let module Wire = Dht_snode.Wire in
  (* Sizes grow with payload and every constructor has a describe tag. *)
  let small =
    Wire.Transfer { event = 1; to_vnode = vid 1; spans = []; data = [] }
  in
  let big =
    Wire.Transfer
      {
        event = 1;
        to_vnode = vid 1;
        spans = [];
        data =
          [
            ( "key",
              Dht_kv.Versioned.cell ~value:(String.make 100 'x') ~ts:1.0
                ~origin:0 () );
          ];
      }
  in
  check Alcotest.bool "payload counted" true
    (Wire.size_bytes big > Wire.size_bytes small + 100);
  check Alcotest.string "describe" "transfer" (Wire.describe small);
  check Alcotest.string "remove tag" "remove-request"
    (Wire.describe (Wire.Remove_request { leaving = vid 1; origin = 0; token = 0 }));
  List.iter
    (fun m -> check Alcotest.bool "positive size" true (Wire.size_bytes m > 0))
    [
      Wire.Routed
        { point = 0; hops = 0; retries = 0; origin = 0;
          op = Wire.Op_get { key = "k"; token = 0 } };
      Wire.All_received { event = 0 };
      Wire.Commit { event = 0; moved = [] };
      Wire.Remove_done { token = 0; ok = true };
    ]

(* --- Removal planner --- *)

let test_plan_removal_basic () =
  let counts = [ (vid 0, 12); (vid 1, 10); (vid 2, 10) ] in
  match Plan.removal ~pmin:8 ~counts ~leaving:(vid 0) with
  | Error _ -> Alcotest.fail "refused"
  | Ok r ->
      check Alcotest.int "total conserved" 32
        (List.fold_left (fun acc (_, c) -> acc + c) 0 r.Plan.removal_counts);
      check Alcotest.int "two survivors" 2 (List.length r.Plan.removal_counts);
      let cs = List.map snd r.Plan.removal_counts in
      check Alcotest.bool "spread <= 1" true
        (List.fold_left max 0 cs - List.fold_left min max_int cs <= 1);
      check Alcotest.int "all 12 partitions moved" 12
        (List.fold_left
           (fun acc m ->
             if Vnode_id.equal m.Plan.src (vid 0) then acc + m.Plan.n else acc)
           0 r.Plan.moves)

let test_plan_removal_errors () =
  (match Plan.removal ~pmin:8 ~counts:[ (vid 0, 8) ] ~leaving:(vid 0) with
  | Error `Last_vnode -> ()
  | _ -> Alcotest.fail "last vnode not detected");
  (match
     Plan.removal ~pmin:8 ~counts:[ (vid 0, 16); (vid 1, 16) ] ~leaving:(vid 0)
   with
  | Error `Insufficient_capacity -> ()
  | _ -> Alcotest.fail "capacity not checked");
  Alcotest.check_raises "absent vnode"
    (Invalid_argument "Plan.removal: leaving vnode not in LPDR") (fun () ->
      ignore (Plan.removal ~pmin:8 ~counts:[ (vid 0, 8) ] ~leaving:(vid 9)))

let prop_plan_removal_matches_live =
  QCheck.Test.make ~name:"removal plan = live balancer (count multisets)"
    ~count:40
    QCheck.(pair (int_range 3 50) small_int)
    (fun (n, pick) ->
      let pmin = 8 in
      let sp = Dht_hashspace.Space.create ~bits:40 in
      let params = Params.global ~space:sp ~pmin () in
      let v0 = Vnode.make ~id:(vid 0) ~group:Group_id.root in
      let b =
        Balancer.bootstrap ~params ~group:Group_id.root ~vnode:v0
          ~notify:(fun _ -> ())
      in
      let all = ref [ v0 ] in
      for i = 1 to n - 1 do
        let v = Vnode.make ~id:(vid i) ~group:Group_id.root in
        Balancer.add_vnode b v;
        all := v :: !all
      done;
      let victim = List.nth !all (pick mod n) in
      let counts =
        Array.to_list
          (Array.map (fun v -> (v.Vnode.id, v.Vnode.count)) (Balancer.vnodes b))
      in
      match
        ( Plan.removal ~pmin ~counts ~leaving:victim.Vnode.id,
          Balancer.remove_vnode b victim )
      with
      | Ok plan, Ok () ->
          let live = Balancer.counts b |> Array.to_list |> List.sort compare in
          let planned =
            List.map snd plan.Plan.removal_counts |> List.sort compare
          in
          live = planned
      | Error _, Error _ -> true
      | _ -> QCheck.Test.fail_reportf "plan and live balancer disagree")

(* --- Distributed removal --- *)

let test_runtime_remove_vnode () =
  (* vmin = 32 keeps a single group for 32 vnodes, where the sole-group
     exception admits any departure. *)
  let rt = Runtime.create ~pmin:8 ~approach:(Runtime.Local { vmin = 32 }) ~snodes:8 ~seed:31 () in
  for i = 1 to 31 do
    Runtime.create_vnode rt ~id:(Vnode_id.make ~snode:(i mod 8) ~vnode:(i / 8)) ()
  done;
  Runtime.run rt;
  (* Store data so migration-on-departure is exercised. *)
  for i = 0 to 499 do
    Runtime.put rt ~via:(i mod 8) ~key:(Printf.sprintf "r%d" i)
      ~value:(string_of_int i) ()
  done;
  Runtime.run rt;
  let outcome = ref None in
  Runtime.remove_vnode rt ~id:(Vnode_id.make ~snode:5 ~vnode:2) (fun ok ->
      outcome := Some ok);
  Runtime.run rt;
  check (Alcotest.option Alcotest.bool) "departure accepted" (Some true) !outcome;
  audit_ok rt "after departure";
  (* All keys survive the departure. *)
  let wrong = ref 0 in
  for i = 0 to 499 do
    Runtime.get rt ~via:(i mod 8) ~key:(Printf.sprintf "r%d" i) (fun v ->
        if v <> Some (string_of_int i) then incr wrong)
  done;
  Runtime.run rt;
  check Alcotest.int "no key lost" 0 !wrong

let test_runtime_remove_refusals () =
  let rt = Runtime.create ~pmin:8 ~approach:(Runtime.Local { vmin = 4 }) ~snodes:4 ~seed:32 () in
  (* Unknown vnode. *)
  let unknown = ref None in
  Runtime.remove_vnode rt ~id:(Vnode_id.make ~snode:2 ~vnode:9) (fun ok ->
      unknown := Some ok);
  Runtime.run rt;
  check (Alcotest.option Alcotest.bool) "unknown refused" (Some false) !unknown;
  (* Last vnode of the DHT. *)
  let last = ref None in
  Runtime.remove_vnode rt ~id:(vid 0) (fun ok -> last := Some ok);
  Runtime.run rt;
  check (Alcotest.option Alcotest.bool) "last vnode refused" (Some false) !last;
  audit_ok rt "after refusals"

let test_runtime_churn_mixed () =
  (* Concurrent joins and leaves through the message protocol. *)
  let rt = Runtime.create ~pmin:8 ~approach:(Runtime.Local { vmin = 4 }) ~snodes:8 ~seed:33 () in
  for i = 1 to 47 do
    Runtime.create_vnode rt ~id:(Vnode_id.make ~snode:(i mod 8) ~vnode:(i / 8)) ()
  done;
  Runtime.run rt;
  let accepted = ref 0 and refused = ref 0 in
  for i = 48 to 63 do
    Runtime.create_vnode rt ~id:(Vnode_id.make ~snode:(i mod 8) ~vnode:(i / 8)) ();
    Runtime.remove_vnode rt ~id:(Vnode_id.make ~snode:(i mod 8) ~vnode:((i - 40) / 8))
      (fun ok -> incr (if ok then accepted else refused))
  done;
  Runtime.run rt;
  check Alcotest.int "all removals resolved" 16 (!accepted + !refused);
  check Alcotest.int "all creations done" 63 (Runtime.completed_creations rt);
  check Alcotest.int "nothing pending" 0 (Runtime.pending_operations rt);
  audit_ok rt "after mixed churn"

(* --- Global approach over the same runtime --- *)

let test_runtime_global_growth () =
  let rt = Runtime.create ~pmin:8 ~approach:Runtime.Global ~snodes:8 ~seed:21 () in
  for i = 1 to 63 do
    Runtime.create_vnode rt ~id:(Vnode_id.make ~snode:(i mod 8) ~vnode:(i / 8)) ()
  done;
  Runtime.run rt;
  check Alcotest.int "all completed" 63 (Runtime.completed_creations rt);
  audit_ok rt "global growth";
  (* 64 vnodes under the global approach is a power-of-two population:
     perfect balance, distributed. *)
  check (Alcotest.float 1e-9) "sigma 0 at power of two" 0. (Runtime.sigma_qv rt)

let test_runtime_global_vs_local_traffic () =
  (* The global approach synchronizes every vnode-hosting snode on every
     creation; the local approach only a group's snodes. Same workload,
     functional runtimes: global must cost more messages. *)
  let grow approach =
    let rt = Runtime.create ~pmin:8 ~approach ~snodes:16 ~seed:22 () in
    for i = 1 to 96 do
      Runtime.create_vnode rt
        ~id:(Vnode_id.make ~snode:(i mod 16) ~vnode:(i / 16))
        ()
    done;
    Runtime.run rt;
    audit_ok rt "traffic comparison";
    ( Dht_event_sim.Network.messages (Runtime.network rt),
      Dht_event_sim.Engine.now (Runtime.engine rt) )
  in
  let gmsgs, gspan = grow Runtime.Global in
  let lmsgs, lspan = grow (Runtime.Local { vmin = 8 }) in
  check Alcotest.bool
    (Printf.sprintf "messages: global %d > local %d" gmsgs lmsgs)
    true (gmsgs > lmsgs);
  check Alcotest.bool
    (Printf.sprintf "makespan: global %.4f >= local %.4f" gspan lspan)
    true (gspan >= lspan)

let test_runtime_global_matches_oracle_exactly () =
  (* Under the global approach victim choice is irrelevant (single domain)
     and the balance depends only on the count multiset, which the pure
     planner reproduces deterministically: the distributed sigma must equal
     the centralized oracle's to the last bit, at every size. *)
  let rt = Runtime.create ~pmin:8 ~approach:Runtime.Global ~snodes:8 ~seed:24 () in
  let oracle = Dht_core.Global_dht.create ~pmin:8 ~first:(vid 0) () in
  for i = 1 to 50 do
    Runtime.create_vnode rt ~id:(Vnode_id.make ~snode:(i mod 8) ~vnode:(i / 8)) ();
    Runtime.run rt;
    ignore
      (Dht_core.Global_dht.add_vnode oracle
         ~id:(Vnode_id.make ~snode:(i mod 8) ~vnode:(i / 8)));
    check
      (Alcotest.float 1e-9)
      (Printf.sprintf "sigma equal at V=%d" (i + 1))
      (Dht_core.Global_dht.sigma_qv oracle)
      (Runtime.sigma_qv rt)
  done

let test_runtime_global_data_plane () =
  let rt = Runtime.create ~pmin:8 ~approach:Runtime.Global ~snodes:4 ~seed:23 () in
  for i = 0 to 99 do
    Runtime.put rt ~via:(i mod 4) ~key:(Printf.sprintf "g%d" i)
      ~value:(string_of_int i) ()
  done;
  Runtime.run rt;
  for i = 1 to 20 do
    Runtime.create_vnode rt ~id:(Vnode_id.make ~snode:(i mod 4) ~vnode:(i / 4)) ()
  done;
  Runtime.run rt;
  let wrong = ref 0 in
  for i = 0 to 99 do
    Runtime.get rt ~via:((i + 1) mod 4) ~key:(Printf.sprintf "g%d" i)
      (fun v -> if v <> Some (string_of_int i) then incr wrong)
  done;
  Runtime.run rt;
  check Alcotest.int "no wrong reads" 0 !wrong;
  audit_ok rt "global data plane"

let prop_random_interleavings =
  (* Fuzz the runtime: a random interleaving of creations, puts and gets
     fired without ever draining the engine in between. Everything must
     complete, reads must be consistent with a model map, and the final
     distributed state must audit clean. *)
  QCheck.Test.make ~name:"runtime survives random op interleavings" ~count:15
    QCheck.(pair small_int (int_range 20 120))
    (fun (seed, ops) ->
      let rng = Rng.of_int (seed + 1000) in
      let snodes = 2 + Rng.int rng 14 in
      let rt = Runtime.create ~pmin:8 ~approach:(Runtime.Local { vmin = 4 }) ~snodes ~seed () in
      let model = Hashtbl.create 64 in
      let next_vnode = ref 1 in
      let creations = ref 0 and puts = ref 0 and gets = ref 0 in
      let wrong = ref 0 in
      for op = 1 to ops do
        match Rng.int rng 3 with
        | 0 ->
            let i = !next_vnode in
            incr next_vnode;
            incr creations;
            Runtime.create_vnode rt
              ~id:(Vnode_id.make ~snode:(i mod snodes) ~vnode:(i / snodes))
              ()
        | 1 ->
            (* Unique key per write: concurrent same-key writes from
               different snodes have no global order (see Runtime.put). *)
            let key = Printf.sprintf "k%d" op in
            let value = string_of_int (Rng.int rng 1000) in
            Hashtbl.replace model key value;
            incr puts;
            Runtime.put rt ~via:(Rng.int rng snodes) ~key ~value ()
        | _ ->
            (* Read a key we have not touched recently: expect the model's
               value only when no put for it is still in flight, so just
               check gets complete and known-absent keys read as None. *)
            let key = Printf.sprintf "absent%d" (Rng.int rng 50) in
            incr gets;
            Runtime.get rt ~via:(Rng.int rng snodes) ~key (fun v ->
                if v <> None then incr wrong)
      done;
      Runtime.run rt;
      (* Quiescent: now every model binding must read back exactly. *)
      Hashtbl.iter
        (fun key value ->
          Runtime.get rt ~via:(Rng.int rng snodes) ~key (fun v ->
              if v <> Some value then incr wrong))
        model;
      Runtime.run rt;
      if Runtime.pending_operations rt <> 0 then
        QCheck.Test.fail_reportf "pending ops left";
      if Runtime.completed_creations rt <> !creations then
        QCheck.Test.fail_reportf "creations lost";
      if !wrong > 0 then QCheck.Test.fail_reportf "%d wrong reads" !wrong;
      match Runtime.audit rt with
      | Ok () -> true
      | Error es -> QCheck.Test.fail_reportf "%s" (String.concat "\n" es))

(* --- Fault injection and crash recovery --- *)

let test_runtime_reliable_under_faults () =
  (* Lossy, duplicating, jittery network: the reliable layer must carry
     every operation to completion, and once faults cease the distributed
     state must audit clean. *)
  let faults =
    Runtime.Fault.create ~drop:0.05 ~duplicate:0.02 ~jitter:1e-4 ~seed:21 ()
  in
  let rt =
    Runtime.create ~pmin:8 ~approach:(Runtime.Local { vmin = 4 }) ~faults
      ~snodes:8 ~seed:21 ()
  in
  let rng = Rng.of_int 77 in
  for i = 0 to 59 do
    Runtime.put rt ~via:(Rng.int rng 8) ~key:(Printf.sprintf "k%d" i)
      ~value:(string_of_int i) ()
  done;
  Runtime.run rt;
  for i = 1 to 11 do
    Runtime.create_vnode rt ~id:(Vnode_id.make ~snode:(i mod 8) ~vnode:(i / 8)) ()
  done;
  Runtime.run rt;
  check Alcotest.int "creations done despite faults" 11
    (Runtime.completed_creations rt);
  check Alcotest.int "no pending ops" 0 (Runtime.pending_operations rt);
  (* Faults cease; every key must read back exactly. *)
  Runtime.Fault.set_drop faults 0.;
  Runtime.Fault.set_duplicate faults 0.;
  Runtime.Fault.set_jitter faults 0.;
  let wrong = ref 0 in
  for i = 0 to 59 do
    Runtime.get rt ~via:(Rng.int rng 8) ~key:(Printf.sprintf "k%d" i) (fun v ->
        if v <> Some (string_of_int i) then incr wrong)
  done;
  Runtime.run rt;
  check Alcotest.int "all keys read back" 0 !wrong;
  let s = Runtime.stats rt in
  check Alcotest.bool "drops occurred" true (s.Runtime.drops > 0);
  check Alcotest.bool "timeouts fired" true (s.Runtime.timeouts > 0);
  check Alcotest.bool "retransmissions sent" true (s.Runtime.retransmits > 0);
  match Runtime.audit rt with
  | Ok () -> ()
  | Error es -> Alcotest.fail (String.concat "\n" es)

let test_runtime_crash_recovery () =
  (* Crash-stop a loaded snode, keep operating around it, bring it back:
     stalled operations must drain and the audit must hold. *)
  let faults = Runtime.Fault.create ~seed:5 () in
  let rt =
    Runtime.create ~pmin:8 ~approach:(Runtime.Local { vmin = 4 }) ~faults
      ~snodes:6 ~seed:31 ()
  in
  for i = 1 to 7 do
    Runtime.create_vnode rt ~id:(Vnode_id.make ~snode:(i mod 6) ~vnode:(i / 6)) ()
  done;
  Runtime.run rt;
  for i = 0 to 39 do
    Runtime.put rt ~via:(i mod 6) ~key:(Printf.sprintf "c%d" i)
      ~value:(string_of_int i) ()
  done;
  Runtime.run rt;
  check Alcotest.bool "alive before crash" true (Runtime.alive rt 2);
  Runtime.crash_snode rt 2;
  check Alcotest.bool "down after crash" false (Runtime.alive rt 2);
  (* Reads and one more creation issued while the snode is down: those that
     need it stall on retransmission, the rest complete. *)
  let vias = [| 0; 1; 3; 4; 5 |] in
  let wrong = ref 0 in
  for i = 0 to 39 do
    Runtime.get rt ~via:vias.(i mod 5) ~key:(Printf.sprintf "c%d" i) (fun v ->
        if v <> Some (string_of_int i) then incr wrong)
  done;
  Runtime.create_vnode rt ~initiator:4 ~id:(Vnode_id.make ~snode:4 ~vnode:2) ();
  let e = Runtime.engine rt in
  Runtime.run ~until:(Engine.now e +. 0.05) rt;
  Runtime.restart_snode rt 2;
  check Alcotest.bool "back up" true (Runtime.alive rt 2);
  Runtime.run rt;
  check Alcotest.int "all reads served" 0 !wrong;
  check Alcotest.int "nothing left pending" 0 (Runtime.pending_operations rt);
  check Alcotest.int "creation completed across the crash" 8
    (Runtime.completed_creations rt);
  let s = Runtime.stats rt in
  check Alcotest.int "one crash" 1 s.Runtime.crashes;
  check Alcotest.int "one recovery" 1 s.Runtime.recoveries;
  match Runtime.audit rt with
  | Ok () -> ()
  | Error es -> Alcotest.fail (String.concat "\n" es)

(* --- Overload and graceful degradation --- *)

let test_runtime_degradation_validation () =
  Alcotest.check_raises "negative retry budget"
    (Invalid_argument "Runtime.create: retry_budget < 0") (fun () ->
      ignore (Runtime.create ~retry_budget:(-1) ~snodes:2 ~seed:1 ()));
  Alcotest.check_raises "negative window"
    (Invalid_argument "Runtime.create: max_inflight < 0") (fun () ->
      ignore (Runtime.create ~max_inflight:(-1) ~snodes:2 ~seed:1 ()));
  Alcotest.check_raises "negative ingress"
    (Invalid_argument "Runtime.create: ingress_limit < 0") (fun () ->
      ignore (Runtime.create ~ingress_limit:(-1) ~snodes:2 ~seed:1 ()));
  Alcotest.check_raises "bad deadline"
    (Invalid_argument "Runtime.create: admission_deadline must be finite and >= 0")
    (fun () ->
      ignore (Runtime.create ~admission_deadline:(-1.) ~snodes:2 ~seed:1 ()))

let test_runtime_backpressure_window () =
  (* max_inflight = 1: every snode may have one un-acked reliable message
     per peer; the rest park in the backlog and promote in order. The
     workload must still complete, the window bookkeeping must audit
     clean, and the parking must actually have happened. *)
  let faults = Runtime.Fault.create ~seed:41 () in
  let rt =
    Runtime.create ~pmin:8 ~approach:(Runtime.Local { vmin = 4 }) ~faults
      ~max_inflight:1 ~snodes:4 ~seed:41 ()
  in
  for i = 0 to 79 do
    Runtime.put rt ~via:(i mod 4) ~key:(Printf.sprintf "bp%d" i)
      ~value:(string_of_int i) ()
  done;
  Runtime.run rt;
  check Alcotest.int "all puts done" 80 (Runtime.completed_puts rt);
  let ov = Runtime.overload_stats rt in
  check Alcotest.bool "messages were backpressured" true (ov.Runtime.backpressured > 0);
  check Alcotest.bool "outbox grew past the window" true (ov.Runtime.outbox_peak >= 1);
  check Alcotest.(list string) "window bookkeeping sound" [] (Runtime.queue_audit rt);
  let wrong = ref 0 in
  for i = 0 to 79 do
    Runtime.get rt ~via:((i + 1) mod 4) ~key:(Printf.sprintf "bp%d" i) (fun v ->
        if v <> Some (string_of_int i) then incr wrong)
  done;
  Runtime.run rt;
  check Alcotest.int "no value lost under backpressure" 0 !wrong;
  audit_ok rt "after backpressured workload"

let test_runtime_adaptive_rto_on_gray_route () =
  (* Snode 0 (the bootstrap owner of all data) is gray-failed: alive, but
     its service time dwarfs the fixed 1 ms RTO base, so the fixed ladder
     retransmits spuriously on every exchange. The Jacobson/Karn estimator
     must learn the true round trip and stop the spurious traffic; same
     seed, same workload, strictly fewer retransmissions. *)
  let run ~adaptive =
    let faults = Runtime.Fault.create ~seed:43 () in
    (* Round trip ~1.3 ms against a 1 ms fixed RTO: most exchanges time out
       spuriously, but the ladder's jitter lets some acks land first, and
       those are the clean Karn samples that seed the estimator. *)
    Runtime.Fault.set_slow faults 0 25.;
    let rt =
      Runtime.create ~pmin:8 ~approach:(Runtime.Local { vmin = 4 }) ~faults
        ~adaptive_rto:adaptive ~snodes:4 ~seed:43 ()
    in
    (* Pace the workload out in virtual time: once the estimator has
       learned the route, every later exchange benefits. *)
    let e = Runtime.engine rt in
    for i = 0 to 39 do
      Engine.schedule e ~delay:(0.005 *. float_of_int (i + 1)) (fun () ->
          Runtime.put rt
            ~via:(1 + (i mod 3))
            ~key:(Printf.sprintf "gray%d" i)
            ~value:(string_of_int i) ())
    done;
    Runtime.run rt;
    check Alcotest.int "all puts done on the gray route" 40
      (Runtime.completed_puts rt);
    (Runtime.stats rt).Runtime.retransmits
  in
  let fixed = run ~adaptive:false and adaptive = run ~adaptive:true in
  check Alcotest.bool
    (Printf.sprintf "adaptive %d < fixed %d retransmits" adaptive fixed)
    true (adaptive < fixed)

let test_runtime_admission_shed () =
  (* An admission deadline far below any achievable quorum round trip:
     every quorum op is shed before touching a replica. Puts settle
     unacknowledged (on_done never fires), gets answer None, the Busy
     reply is counted at the origin, and nothing is left pending. *)
  let faults = Runtime.Fault.create ~seed:47 () in
  let rt =
    Runtime.create ~pmin:8 ~approach:(Runtime.Local { vmin = 4 }) ~faults
      ~rfactor:3 ~read_quorum:2 ~write_quorum:2 ~admission_deadline:1e-9
      ~snodes:4 ~seed:47 ()
  in
  let acked = ref 0 and got = ref [] in
  for i = 0 to 9 do
    Runtime.put rt ~via:(i mod 4) ~on_done:(fun () -> incr acked)
      ~key:(Printf.sprintf "shed%d" i) ~value:"v" ()
  done;
  Runtime.run rt;
  for i = 0 to 4 do
    Runtime.get rt ~via:(i mod 4) ~key:(Printf.sprintf "shed%d" i) (fun v ->
        got := v :: !got)
  done;
  Runtime.run rt;
  check Alcotest.int "no put acknowledged" 0 !acked;
  check Alcotest.int "every get answered" 5 (List.length !got);
  List.iter
    (fun v ->
      check (Alcotest.option Alcotest.string) "shed get answers None" None v)
    !got;
  check Alcotest.int "nothing pending" 0 (Runtime.pending_operations rt);
  let ov = Runtime.overload_stats rt in
  check Alcotest.int "all 15 ops shed" 15 ov.Runtime.sheds;
  check Alcotest.int "Busy settled at the origin for each" 15
    ov.Runtime.busy_rejections;
  (* No shed value may ever surface in the authoritative store. *)
  for i = 0 to 9 do
    check (Alcotest.option Alcotest.string) "shed write left no trace" None
      (Runtime.peek rt ~key:(Printf.sprintf "shed%d" i))
  done

let test_runtime_retry_budget_property () =
  (* The retry-budget law across 100 seeds of a lossy workload:
     retransmits <= budget * reliable_messages, and past-budget attempts
     surface as probes instead of vanishing. *)
  let budget = 2 in
  let violations = ref [] in
  let probes_seen = ref 0 in
  for seed = 1 to 100 do
    let faults = Runtime.Fault.create ~drop:0.25 ~seed () in
    let rt =
      Runtime.create ~pmin:8 ~approach:(Runtime.Local { vmin = 4 }) ~faults
        ~retry_budget:budget ~snodes:3 ~seed ()
    in
    for i = 0 to 14 do
      Runtime.put rt ~via:(i mod 3) ~key:(Printf.sprintf "rb%d" i)
        ~value:(string_of_int i) ()
    done;
    Runtime.run ~until:2. rt;
    let s = Runtime.stats rt and ov = Runtime.overload_stats rt in
    probes_seen := !probes_seen + ov.Runtime.probes;
    if s.Runtime.retransmits > budget * ov.Runtime.reliable_messages then
      violations := seed :: !violations
  done;
  check Alcotest.(list int) "retransmits <= budget * reliable messages" []
    !violations;
  check Alcotest.bool "past-budget attempts surfaced as probes" true
    (!probes_seen > 0)

let suite =
  [
    Alcotest.test_case "plan: bootstrap growth" `Quick test_plan_bootstrap_growth;
    Alcotest.test_case "plan: uneven counts" `Quick test_plan_no_split_when_uneven;
    Alcotest.test_case "plan: validation" `Quick test_plan_validation;
    QCheck_alcotest.to_alcotest prop_plan_matches_live_balancer;
    Alcotest.test_case "runtime: bootstrap" `Quick test_runtime_bootstrap;
    Alcotest.test_case "runtime: sequential growth audits" `Quick
      test_runtime_sequential_growth;
    Alcotest.test_case "runtime: concurrent burst" `Quick
      test_runtime_concurrent_burst;
    Alcotest.test_case "runtime: data plane" `Quick test_runtime_data_plane;
    Alcotest.test_case "runtime: reads during growth" `Quick
      test_runtime_ops_during_growth;
    Alcotest.test_case "runtime: sigma in oracle band" `Quick
      test_runtime_sigma_tracks_oracle_band;
    Alcotest.test_case "runtime: traffic counted" `Quick
      test_runtime_messages_counted;
    Alcotest.test_case "runtime: validation" `Quick test_runtime_validation;
    Alcotest.test_case "runtime: deterministic" `Quick test_runtime_deterministic;
    Alcotest.test_case "wire sizes and tags" `Quick test_wire_sizes;
    Alcotest.test_case "plan: removal basic" `Quick test_plan_removal_basic;
    Alcotest.test_case "plan: removal errors" `Quick test_plan_removal_errors;
    QCheck_alcotest.to_alcotest prop_plan_removal_matches_live;
    Alcotest.test_case "runtime: vnode departure" `Quick
      test_runtime_remove_vnode;
    Alcotest.test_case "runtime: departure refusals" `Quick
      test_runtime_remove_refusals;
    Alcotest.test_case "runtime: mixed join/leave churn" `Quick
      test_runtime_churn_mixed;
    Alcotest.test_case "runtime: global approach growth" `Quick
      test_runtime_global_growth;
    Alcotest.test_case "runtime: global vs local traffic" `Quick
      test_runtime_global_vs_local_traffic;
    Alcotest.test_case "runtime: global data plane" `Quick
      test_runtime_global_data_plane;
    Alcotest.test_case "runtime: global = oracle exactly" `Quick
      test_runtime_global_matches_oracle_exactly;
    QCheck_alcotest.to_alcotest prop_random_interleavings;
    Alcotest.test_case "runtime: reliable under faults" `Quick
      test_runtime_reliable_under_faults;
    Alcotest.test_case "runtime: crash recovery" `Quick
      test_runtime_crash_recovery;
    Alcotest.test_case "runtime: degradation knob validation" `Quick
      test_runtime_degradation_validation;
    Alcotest.test_case "runtime: backpressure window" `Quick
      test_runtime_backpressure_window;
    Alcotest.test_case "runtime: adaptive RTO on a gray route" `Quick
      test_runtime_adaptive_rto_on_gray_route;
    Alcotest.test_case "runtime: admission control sheds with Busy" `Quick
      test_runtime_admission_shed;
    Alcotest.test_case "runtime: retry budget across 100 seeds" `Quick
      test_runtime_retry_budget_property;
  ]
