(* Merkle-tree anti-entropy and range reads: the hash-tree library's
   structural laws (incremental maintenance equals rebuild, subrange
   frames equal flat scans, untouched subtrees survive splits), exact
   symmetric-difference reconciliation at the runtime level, range-read
   session guarantees, the hint-drain regression under the tree protocol,
   and schedule exploration over the [Mt_*] frames — including a
   committed shrunk repro of a reconciliation race. *)

open Dht_hashspace
module Merkle = Dht_merkle.Merkle
module Runtime = Dht_snode.Runtime
module Network = Dht_event_sim.Network
module Engine = Dht_event_sim.Engine
module Hash = Dht_hashes.Hash
module Rng = Dht_prng.Rng
module Explorer = Dht_check.Explorer
module Scenarios = Dht_check.Scenarios
module Schedule = Dht_check.Schedule

let check = Alcotest.check
let space = Space.default

let fail_strings what = function
  | [] -> ()
  | msgs -> QCheck.Test.fail_reportf "%s:@.%s" what (String.concat "\n" msgs)

(* --- (b) incremental maintenance equals rebuild --- *)

let prop_incremental_rehash =
  QCheck.Test.make
    ~name:"merkle: tree maintained across random puts equals rebuilt"
    ~count:200 QCheck.small_int (fun salt ->
      let rng = Rng.of_int ((salt * 131) + 17) in
      let cap = 1 + Rng.int rng 4 in
      let t = Merkle.create ~leaf_cap:cap ~space ~span:Span.root () in
      let model = Hashtbl.create 64 in
      let nops = 30 + Rng.int rng 120 in
      for _ = 1 to nops do
        let key = Printf.sprintf "key-%d" (Rng.int rng 40) in
        let point = Hash.string space key in
        if Rng.int rng 4 = 0 then begin
          let hit = Merkle.remove t ~key ~point in
          if hit <> Hashtbl.mem model key then
            QCheck.Test.fail_reportf "remove %S hit=%b, model disagrees" key
              hit;
          Hashtbl.remove model key
        end
        else begin
          let digest = Rng.int rng 1_000_000 in
          Hashtbl.replace model key (point, digest);
          Merkle.insert t ~key ~point ~digest ()
        end
      done;
      fail_strings "incremental tree inconsistent" (Merkle.check t);
      let cells =
        Hashtbl.fold (fun k (p, d) acc -> (k, p, d, ()) :: acc) model []
      in
      let rebuilt = Merkle.build ~leaf_cap:cap ~space ~span:Span.root cells in
      fail_strings "rebuilt tree inconsistent" (Merkle.check rebuilt);
      if not (Merkle.equal t rebuilt) then
        QCheck.Test.fail_reportf
          "maintained tree differs from rebuild (%d keys, cap %d)"
          (Hashtbl.length model) cap;
      Merkle.count t = Hashtbl.length model
      && Merkle.digest t = Merkle.digest rebuilt)

(* --- (c) subrange frames: exactness and split isolation --- *)

let brute_frame cells q =
  List.fold_left
    (fun (c, h) (_, point, digest, ()) ->
      if Span.contains space q point then (c + 1, h lxor digest) else (c, h))
    (0, 0) cells

let prop_subrange_frames =
  QCheck.Test.make
    ~name:"merkle: subrange frames equal flat scans; splits leave disjoint \
           subtrees untouched"
    ~count:200 QCheck.small_int (fun salt ->
      let rng = Rng.of_int ((salt * 977) + 3) in
      let cap = 1 + Rng.int rng 3 in
      let n = 10 + Rng.int rng 60 in
      (* Points chosen directly (the tree never re-derives them), so the
         generator controls the spatial layout exactly. *)
      let cells =
        List.init n (fun i ->
            let point = Rng.int rng (Space.size space) in
            (Printf.sprintf "c-%d-%d" i point, point, Rng.int rng 1_000_000, ()))
      in
      let t = Merkle.build ~leaf_cap:cap ~space ~span:Span.root cells in
      (* Any dyadic query frame equals the flat fold over the members. *)
      for level = 0 to 8 do
        let index = Rng.int rng (1 lsl level) in
        let q = Span.make space ~level ~index in
        let f = Merkle.frame_at t q in
        let c, h = brute_frame cells q in
        if f.Merkle.f_count <> c || f.Merkle.f_hash <> h then
          QCheck.Test.fail_reportf
            "frame at %a: (%d, %x) but scan says (%d, %x)" Span.pp q
            f.Merkle.f_count f.Merkle.f_hash c h
      done;
      (* An interior frame is always its children's XOR / sum. *)
      let q = Span.make space ~level:2 ~index:(Rng.int rng 4) in
      let f = Merkle.frame_at t q in
      let a, b = Merkle.children t q in
      if
        f.Merkle.f_hash <> a.Merkle.f_hash lxor b.Merkle.f_hash
        || f.Merkle.f_count <> a.Merkle.f_count + b.Merkle.f_count
      then QCheck.Test.fail_reportf "children do not recompose %a" Span.pp q;
      (* Mutating inside one level-3 range (forcing leaf splits and
         interior collapses) must leave every disjoint level-3 frame
         bit-identical. *)
      let level = 3 in
      let spans =
        List.init (1 lsl level) (fun index -> Span.make space ~level ~index)
      in
      let target = List.nth spans (Rng.int rng (1 lsl level)) in
      let before =
        List.map (fun s -> (s, Merkle.frame_at t s)) spans
        |> List.filter (fun (s, _) -> not (Span.equal s target))
      in
      let lo = Span.start space target in
      let width = Span.size space target in
      for i = 0 to 2 * cap do
        let point = lo + Rng.int rng width in
        Merkle.insert t
          ~key:(Printf.sprintf "mut-%d" i)
          ~point ~digest:(Rng.int rng 1_000_000) ()
      done;
      for i = 0 to cap do
        let key = Printf.sprintf "mut-%d" i in
        ignore (Merkle.remove t ~key ~point:(lo + Rng.int rng width))
      done;
      fail_strings "tree inconsistent after mutation" (Merkle.check t);
      List.for_all
        (fun (s, f0) ->
          let f1 = Merkle.frame_at t s in
          f1.Merkle.f_count = f0.Merkle.f_count
          && f1.Merkle.f_hash = f0.Merkle.f_hash)
        before)

(* --- (a) runtime reconciliation: exact symmetric difference --- *)

let mt_tag_stats rt =
  List.fold_left
    (fun (msgs, bytes) (tag, m, b) ->
      if String.length tag >= 3 && String.sub tag 0 3 = "mt:" then
        (msgs + m, bytes + b)
      else (msgs, bytes))
    (0, 0)
    (Network.per_tag (Runtime.network rt))

let prop_reconciliation =
  QCheck.Test.make
    ~name:"merkle: reconciliation converges, transfers exactly the \
           symmetric difference"
    ~count:200 QCheck.small_int (fun salt ->
      let rng = Rng.of_int ((salt * 7919) + 5) in
      let rt =
        Runtime.create ~pmin:8
          ~approach:(Runtime.Local { vmin = 2 })
          ~rfactor:2 ~read_quorum:1 ~write_quorum:2 ~mt_threshold:0
          ~mt_leaf:(1 + Rng.int rng 4)
          ~snodes:2 ~seed:salt ()
      in
      let base = 20 + Rng.int rng 40 in
      for k = 0 to base - 1 do
        Runtime.put rt ~via:(k mod 2)
          ~key:(Printf.sprintf "base-%d" k)
          ~value:(Printf.sprintf "v-%d" k)
          ()
      done;
      Runtime.run rt;
      (* Random divergence: keys missing on either side, plus keys stale
         on one side — every class of symmetric-difference element. *)
      let only0 = Rng.int rng 6
      and only1 = Rng.int rng 6
      and stale = Rng.int rng 6 in
      for i = 0 to only0 - 1 do
        Runtime.plant rt ~snode:0
          ~key:(Printf.sprintf "m0-%d" i)
          ~value:(Printf.sprintf "m0v-%d" i) ~ts:3e-6 ()
      done;
      for i = 0 to only1 - 1 do
        Runtime.plant rt ~snode:1
          ~key:(Printf.sprintf "m1-%d" i)
          ~value:(Printf.sprintf "m1v-%d" i) ~ts:3e-6 ()
      done;
      for i = 0 to stale - 1 do
        let key = Printf.sprintf "st-%d" i in
        Runtime.plant rt ~snode:0 ~key ~value:(Printf.sprintf "new-%d" i)
          ~ts:2e-6 ();
        Runtime.plant rt ~snode:1 ~key ~value:(Printf.sprintf "old-%d" i)
          ~ts:1e-6 ()
      done;
      let expected = only0 + only1 + (2 * stale) in
      let s0 = Runtime.ae_stats rt in
      let _, bytes0 = mt_tag_stats rt in
      Runtime.anti_entropy rt;
      Runtime.run rt;
      let s1 = Runtime.ae_stats rt in
      let _, bytes1 = mt_tag_stats rt in
      let sent = s1.Runtime.ae_keys_sent - s0.Runtime.ae_keys_sent in
      if sent <> expected then
        QCheck.Test.fail_reportf
          "transferred %d cells, symmetric difference is %d (only0=%d \
           only1=%d stale=%d)"
          sent expected only0 only1 stale;
      fail_strings "replicas still divergent" (Runtime.replica_divergence rt);
      fail_strings "tree audit" (Runtime.merkle_audit rt);
      (* Stale pairs resolve to the fresher plant at the owner. *)
      for i = 0 to stale - 1 do
        let key = Printf.sprintf "st-%d" i in
        if Runtime.peek rt ~key <> Some (Printf.sprintf "new-%d" i) then
          QCheck.Test.fail_reportf "stale pair %S not LWW-resolved" key
      done;
      (* Descent effort is O(depth · diff), never O(n): with no divergence
         every root frame prunes, and with divergence the frames served
         stay within twice the tree depth per differing cell. *)
      let frames = s1.Runtime.ae_frames - s0.Runtime.ae_frames in
      let leaves = s1.Runtime.ae_leaves - s0.Runtime.ae_leaves in
      if expected = 0 then begin
        if frames <> 0 || leaves <> 0 then
          QCheck.Test.fail_reportf
            "no divergence but %d frames / %d leaf exchanges" frames leaves;
        if bytes1 - bytes0 > 200 * (s1.Runtime.ae_roots - s0.Runtime.ae_roots)
        then
          QCheck.Test.fail_reportf "converged tree still spent %d mt bytes"
            (bytes1 - bytes0)
      end
      else begin
        let depth = Space.max_level space in
        if frames > 2 * depth * expected then
          QCheck.Test.fail_reportf "%d frames for diff %d: descent not \
                                    pruned" frames expected;
        if leaves > expected then
          QCheck.Test.fail_reportf "%d leaf exchanges for diff %d" leaves
            expected
      end;
      true)

(* Seed-scale behaviour is unchanged: under the default threshold a small
   cluster's anti-entropy emits only legacy digests — not one tree frame
   on the wire. *)
let test_threshold_fallback () =
  let rt =
    Runtime.create ~pmin:8
      ~approach:(Runtime.Local { vmin = 2 })
      ~rfactor:3 ~read_quorum:2 ~write_quorum:2 ~snodes:4 ~seed:11 ()
  in
  for k = 0 to 29 do
    Runtime.put rt ~via:(k mod 4)
      ~key:(Printf.sprintf "key-%d" k)
      ~value:(Printf.sprintf "v-%d" k)
      ()
  done;
  Runtime.run rt;
  Runtime.plant rt ~snode:1 ~key:"div-0" ~value:"planted" ~ts:1e-6 ();
  (* Two rounds: the planted cell first reaches the partition's primary,
     then the primary's next push carries it to the remaining replica. *)
  Runtime.anti_entropy rt;
  Runtime.run rt;
  Runtime.anti_entropy rt;
  Runtime.run rt;
  let s = Runtime.ae_stats rt in
  check Alcotest.bool "legacy digests flowed" true (s.Runtime.ae_digests > 0);
  check Alcotest.int "no tree roots" 0 s.Runtime.ae_roots;
  let mt_msgs, mt_bytes = mt_tag_stats rt in
  check Alcotest.int "no mt messages" 0 mt_msgs;
  check Alcotest.int "no mt bytes" 0 mt_bytes;
  check Alcotest.(list string) "still converges" []
    (Runtime.replica_divergence rt)

(* --- range reads --- *)

let test_range_read_your_writes () =
  let rt =
    Runtime.create ~pmin:8
      ~approach:(Runtime.Local { vmin = 2 })
      ~rfactor:3 ~read_quorum:2 ~write_quorum:2 ~snodes:4 ~seed:42 ()
  in
  let keys = 30 in
  for k = 0 to keys - 1 do
    Runtime.put rt ~via:(k mod 4)
      ~key:(Printf.sprintf "key-%d" k)
      ~value:(Printf.sprintf "v-%d" k)
      ()
  done;
  Runtime.run rt;
  (* Full-space range sees every acked write at its freshest value. *)
  let got = ref None in
  Runtime.range_get rt ~via:1 ~lo:0 ~hi:(Space.size space) (fun r ->
      got := Some r);
  Runtime.run rt;
  (match !got with
  | None -> Alcotest.fail "range_get never completed"
  | Some result ->
      check Alcotest.int "every key present" keys (List.length result);
      List.iter
        (fun (k, v) ->
          check Alcotest.(option string) ("range value of " ^ k)
            (Runtime.peek rt ~key:k) (Some v))
        result;
      let sorted = List.sort compare (List.map fst result) in
      check
        Alcotest.(list string)
        "sorted and duplicate-free"
        (List.sort_uniq compare (List.map fst result))
        sorted);
  (* A subrange returns exactly the keys hashing inside it. *)
  let lo = Space.size space / 4 and hi = Space.size space / 2 in
  let expected =
    List.init keys (fun k -> Printf.sprintf "key-%d" k)
    |> List.filter (fun key ->
           let p = Hash.string space key in
           p >= lo && p < hi)
    |> List.sort compare
  in
  let got = ref None in
  Runtime.range_get rt ~via:2 ~lo ~hi (fun r -> got := Some r);
  Runtime.run rt;
  (match !got with
  | None -> Alcotest.fail "subrange range_get never completed"
  | Some result ->
      check
        Alcotest.(list string)
        "subrange keys exact" expected (List.map fst result));
  (* Session order: a put acknowledged before the range is issued must be
     visible in it (read-your-writes through the range path). *)
  let seen = ref false in
  Runtime.put rt ~via:3 ~key:"session-key" ~value:"session-value"
    ~on_done:(fun () ->
      Runtime.range_get rt ~via:3 ~lo:0 ~hi:(Space.size space) (fun r ->
          seen := List.mem_assoc "session-key" r && List.assoc "session-key" r = "session-value"))
    ();
  Runtime.run rt;
  check Alcotest.bool "read-your-writes through range_get" true !seen;
  check Alcotest.int "ranges counted" 3 (Runtime.completed_ranges rt)

let test_range_excludes_shed_writes () =
  (* An admission deadline no quorum round can meet: every put sheds with
     Busy and is applied nowhere, so ranges must never surface one. The
     planted baseline (injected beneath admission control) proves the
     range itself still completes — Busy applies to point quorum ops
     only. *)
  let rt =
    Runtime.create
      ~faults:(Runtime.Fault.create ~seed:17 ())
      ~pmin:8
      ~approach:(Runtime.Local { vmin = 2 })
      ~rfactor:3 ~read_quorum:2 ~write_quorum:2 ~admission_deadline:1e-9
      ~snodes:4 ~seed:17 ()
  in
  for i = 0 to 9 do
    let key = Printf.sprintf "base-%d" i in
    let value = Printf.sprintf "kept-%d" i in
    for sn = 0 to 3 do
      Runtime.plant rt ~snode:sn ~key ~value ~ts:1e-6 ()
    done
  done;
  let acked = ref 0 in
  for i = 0 to 9 do
    Runtime.put rt ~via:(i mod 4)
      ~key:(Printf.sprintf "base-%d" i)
      ~value:(Printf.sprintf "shed-%d" i)
      ~on_done:(fun () -> incr acked)
      ()
  done;
  Runtime.run rt;
  check Alcotest.int "every write shed" 0 !acked;
  let got = ref None in
  Runtime.range_get rt ~via:0 ~lo:0 ~hi:(Space.size space) (fun r ->
      got := Some r);
  Runtime.run rt;
  match !got with
  | None -> Alcotest.fail "range_get shed or lost"
  | Some result ->
      check Alcotest.int "ranges are never shed" 10 (List.length result);
      List.iter
        (fun (k, v) ->
          if String.length v >= 4 && String.sub v 0 4 = "shed" then
            Alcotest.failf "range surfaced shed write %S at %S" v k)
        result

let prop_range_mid_churn =
  QCheck.Test.make
    ~name:"range: complete and duplicate-free across 100 mid-migration \
           schedules"
    ~count:100 QCheck.small_int (fun salt ->
      let rng = Rng.of_int ((salt * 271) + 9) in
      let snodes = 3 + Rng.int rng 3 in
      let rt =
        Runtime.create ~pmin:8
          ~approach:(Runtime.Local { vmin = 2 })
          ~rfactor:3 ~read_quorum:2 ~write_quorum:2 ~snodes ~seed:salt ()
      in
      let open Dht_core in
      for n = 1 to 2 + Rng.int rng 3 do
        Runtime.create_vnode rt
          ~id:(Vnode_id.make ~snode:(n mod snodes) ~vnode:(n / snodes))
          ()
      done;
      Runtime.run rt;
      let keys = 15 + Rng.int rng 15 in
      for k = 0 to keys - 1 do
        Runtime.put rt ~via:(k mod snodes)
          ~key:(Printf.sprintf "key-%d" k)
          ~value:(Printf.sprintf "v-%d" k)
          ()
      done;
      Runtime.run rt;
      (* A migration in flight while the range runs: the balancing event
         and the range interleave arbitrarily; the epoch-fenced commit
         must never let the range observe a partition twice or a hole. *)
      let g = 7 + Rng.int rng 5 in
      Runtime.create_vnode rt
        ~id:(Vnode_id.make ~snode:(g mod snodes) ~vnode:(g / snodes))
        ();
      let lo = Rng.int rng (Space.size space / 2) in
      let hi = lo + 1 + Rng.int rng (Space.size space - lo - 1) in
      let got = ref None in
      Runtime.range_get rt ~via:(Rng.int rng snodes) ~lo ~hi (fun r ->
          got := Some r);
      Runtime.run rt;
      match !got with
      | None -> QCheck.Test.fail_reportf "range never completed"
      | Some result ->
          let names = List.map fst result in
          if List.sort_uniq compare names <> List.sort compare names then
            QCheck.Test.fail_reportf "duplicate keys in range result";
          let expected =
            List.init keys (fun k -> Printf.sprintf "key-%d" k)
            |> List.filter (fun key ->
                   let p = Hash.string space key in
                   p >= lo && p < hi)
            |> List.sort compare
          in
          if List.sort compare names <> expected then
            QCheck.Test.fail_reportf
              "range incomplete mid-migration: got %d of %d keys"
              (List.length names) (List.length expected);
          List.for_all
            (fun (k, v) -> Runtime.peek rt ~key:k = Some v)
            result)

(* --- hinted handoff must still drain with full-digest AE disabled --- *)

let test_hint_drain_under_tree_protocol () =
  (* The restart broadcast (Ae_request) is what re-offers parked hints;
     with [mt_threshold = 0] the recovery push answers with tree frames
     instead of flat digests, and the hints must drain all the same. *)
  let faults = Runtime.Fault.create ~seed:9 () in
  let rt =
    Runtime.create ~faults ~rfactor:3 ~read_quorum:2 ~write_quorum:2
      ~mt_threshold:0 ~mt_leaf:4 ~snodes:5 ~seed:9 ()
  in
  Runtime.crash_snode rt 2;
  let acked = ref 0 in
  for i = 0 to 9 do
    Runtime.put rt ~via:0
      ~on_done:(fun () -> incr acked)
      ~key:(Printf.sprintf "h%d" i)
      ~value:(string_of_int i) ()
  done;
  let e = Runtime.engine rt in
  Runtime.run ~until:(Engine.now e +. 0.5) rt;
  check Alcotest.int "writes complete despite the dead replica" 10 !acked;
  let s = Runtime.repl_stats rt in
  check Alcotest.bool "hints parked" true (s.Runtime.hints_stored >= 10);
  Runtime.restart_snode rt 2;
  Runtime.run rt;
  let s = Runtime.repl_stats rt in
  check Alcotest.int "every hint drained under the tree protocol"
    s.Runtime.hints_stored s.Runtime.hints_flushed;
  (* Empty spans still answer with a zero legacy digest even at
     [mt_threshold = 0], so assert the tree protocol engaged rather than
     that no digest ever flowed. *)
  let ae = Runtime.ae_stats rt in
  check Alcotest.bool "tree protocol engaged" true (ae.Runtime.ae_roots > 0);
  let wrong = ref 0 in
  for i = 0 to 9 do
    Runtime.get rt ~via:2
      ~key:(Printf.sprintf "h%d" i)
      (fun v -> if v <> Some (string_of_int i) then incr wrong)
  done;
  Runtime.run rt;
  check Alcotest.int "no stale reads after recovery" 0 !wrong

(* --- schedule exploration over Mt_* frames --- *)

let test_mt_protected_sweep () =
  (* Tree frames deferred, dropped (reliably retransmitted) or caught in
     crash windows must never corrupt state or lose a planted cell. *)
  let sc = Scenarios.mt_ae () in
  match Explorer.explore ~rounds:5 ~max_tweaks:3 sc ~seeds:[ 101; 102 ] with
  | None -> ()
  | Some (o : Explorer.outcome) ->
      Alcotest.failf "mt-ae failed under %s:@.%s"
        (Schedule.to_string o.schedule)
        (String.concat "\n" o.failures)

let repro_path =
  if Sys.file_exists "repros/mt-reconciliation-race.sched" then
    "repros/mt-reconciliation-race.sched"
  else "test/repros/mt-reconciliation-race.sched"

let test_mt_repro_replays () =
  (* Committed shrunk schedule: in mutation mode (no reliable layer) the
     sunk message silently kills one reconciliation exchange, and the
     verifier must still detect the unreconciled planted cell. *)
  match Schedule.load ~path:repro_path with
  | Error m -> Alcotest.failf "cannot load %s: %s" repro_path m
  | Ok sched -> (
      match Scenarios.by_name sched.Schedule.scenario with
      | None ->
          Alcotest.failf "unknown scenario %S in repro" sched.Schedule.scenario
      | Some sc -> (
          let o = Explorer.run sc sched in
          match o.Explorer.failures with
          | [] -> Alcotest.failf "repro %s no longer fails" repro_path
          | msgs ->
              check Alcotest.bool "failure is an unreconciled planted cell"
                true
                (List.exists
                   (fun m ->
                     let has affix =
                       let n = String.length affix and len = String.length m in
                       let rec go i =
                         i + n <= len
                         && (String.sub m i n = affix || go (i + 1))
                       in
                       go 0
                     in
                     has "not reconciled" || has "MERKLE")
                   msgs)))

let to_alcotest = QCheck_alcotest.to_alcotest

let suite =
  [
    to_alcotest prop_incremental_rehash;
    to_alcotest prop_subrange_frames;
    to_alcotest prop_reconciliation;
    Alcotest.test_case "default threshold keeps seed-scale AE legacy" `Quick
      test_threshold_fallback;
    Alcotest.test_case "range: read-your-writes and exact subranges" `Quick
      test_range_read_your_writes;
    Alcotest.test_case "range: shed writes never surface" `Quick
      test_range_excludes_shed_writes;
    to_alcotest prop_range_mid_churn;
    Alcotest.test_case "hints drain with full-digest AE disabled" `Quick
      test_hint_drain_under_tree_protocol;
    Alcotest.test_case "mt-ae protected sweep is clean" `Slow
      test_mt_protected_sweep;
    Alcotest.test_case "committed reconciliation-race repro replays" `Quick
      test_mt_repro_replays;
  ]
