(* The Wing-Gong linearizability search, the session guarantees and the
   durability audit — first over hand-written histories, then over
   histories recorded from the live runtime, pinning the replication
   layer's tricky schedules (same-tick overwrite, dead-via reroute, hint
   drain race): each recorded history is accepted, and a mutated
   lost-write variant of it is rejected. *)

open Dht_core
module Runtime = Dht_snode.Runtime
module Engine = Dht_event_sim.Engine
module Fault = Dht_event_sim.Fault
module H = Dht_check.History
module Linear = Dht_check.Linear

let mk ?(session = 0) ?(failed = false) ?(shed = false) ?ret ~token ~inv op =
  { H.token; session; op; inv; ret; failed; shed }

let put ?session ?failed ?ret ~token ~inv key value =
  mk ?session ?failed ?ret ~token ~inv (H.Put { key; value })

let get ?session ?ret ~token ~inv key result =
  mk ?session ?ret ~token ~inv (H.Get { key; result })

let accepts what entries =
  match Linear.check entries with
  | [] -> ()
  | msgs -> Alcotest.failf "%s rejected:@.%s" what (String.concat "\n" msgs)

let rejects what entries =
  match Linear.check entries with
  | [] -> Alcotest.failf "%s accepted" what
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Hand-written histories.                                             *)

let test_wg_units () =
  accepts "sequential put/get"
    [
      put ~token:0 ~inv:0. ~ret:1. "k" "a";
      get ~token:1 ~inv:2. ~ret:3. "k" (Some "a");
    ];
  rejects "stale read after a later completed put"
    [
      put ~token:0 ~inv:0. ~ret:1. "k" "a";
      put ~token:1 ~inv:2. ~ret:3. "k" "b";
      get ~token:2 ~inv:4. ~ret:5. "k" (Some "a");
    ];
  accepts "overlapping puts allow either read order"
    [
      put ~token:0 ~inv:0. ~ret:10. "k" "a";
      put ~token:1 ~inv:0. ~ret:10. "k" "b";
      get ~token:2 ~inv:1. ~ret:2. "k" (Some "a");
      get ~token:3 ~inv:3. ~ret:4. "k" (Some "b");
    ];
  accepts "pending put may have taken effect"
    [
      put ~token:0 ~inv:0. ~ret:1. "k" "a";
      put ~token:1 ~inv:2. "k" "b";
      get ~token:2 ~inv:3. ~ret:4. "k" (Some "b");
    ];
  accepts "pending put may never take effect"
    [
      put ~token:0 ~inv:0. ~ret:1. "k" "a";
      put ~token:1 ~inv:2. "k" "b";
      get ~token:2 ~inv:3. ~ret:4. "k" (Some "a");
    ];
  rejects "read of nothing after a completed put"
    [
      put ~token:0 ~inv:0. ~ret:1. "k" "a";
      get ~token:1 ~inv:2. ~ret:3. "k" None;
    ]

let test_wg_bound () =
  let entries =
    List.init (Linear.max_ops + 1) (fun i ->
        put ~token:i ~inv:(float_of_int i)
          ~ret:(float_of_int i +. 0.5)
          "k" (string_of_int i))
  in
  match Linear.check entries with
  | [ _ ] -> ()
  | other ->
      Alcotest.failf "expected one bound message, got %d" (List.length other)

let test_read_your_writes () =
  let violated entries = Linear.read_your_writes entries <> [] in
  Alcotest.(check bool) "read None after own completed put" true
    (violated
       [
         put ~token:0 ~inv:0. ~ret:1. "k" "a";
         get ~token:1 ~inv:2. ~ret:3. "k" None;
       ]);
  Alcotest.(check bool) "read a value staler than own put" true
    (violated
       [
         put ~session:1 ~token:0 ~inv:0. ~ret:0.5 "k" "x";
         put ~session:0 ~token:1 ~inv:1. ~ret:2. "k" "a";
         get ~session:0 ~token:2 ~inv:3. ~ret:4. "k" (Some "x");
       ]);
  Alcotest.(check bool) "overlapping own put constrains nothing" false
    (violated
       [
         put ~token:0 ~inv:0. ~ret:5. "k" "a";
         get ~token:1 ~inv:1. ~ret:2. "k" None;
       ]);
  Alcotest.(check bool) "fresh read passes" false
    (violated
       [
         put ~token:0 ~inv:0. ~ret:1. "k" "a";
         get ~token:1 ~inv:2. ~ret:3. "k" (Some "a");
       ])

let test_monotonic_reads () =
  let writer =
    [
      put ~session:1 ~token:0 ~inv:0. ~ret:1. "k" "a";
      put ~session:1 ~token:1 ~inv:2. ~ret:3. "k" "b";
    ]
  in
  let violated entries = Linear.monotonic_reads entries <> [] in
  Alcotest.(check bool) "regression to the older put" true
    (violated
       (writer
       @ [
           get ~session:0 ~token:2 ~inv:4. ~ret:5. "k" (Some "b");
           get ~session:0 ~token:3 ~inv:6. ~ret:7. "k" (Some "a");
         ]));
  Alcotest.(check bool) "regression to nothing" true
    (violated
       (writer
       @ [
           get ~session:0 ~token:2 ~inv:4. ~ret:5. "k" (Some "b");
           get ~session:0 ~token:3 ~inv:6. ~ret:7. "k" None;
         ]));
  Alcotest.(check bool) "overlapping reads constrain nothing" false
    (violated
       (writer
       @ [
           get ~session:0 ~token:2 ~inv:4. ~ret:10. "k" (Some "b");
           get ~session:0 ~token:3 ~inv:5. ~ret:6. "k" (Some "a");
         ]));
  Alcotest.(check bool) "monotone reads pass" false
    (violated
       (writer
       @ [
           get ~session:0 ~token:2 ~inv:4. ~ret:5. "k" (Some "a");
           get ~session:0 ~token:3 ~inv:6. ~ret:7. "k" (Some "b");
         ]))

let test_durability () =
  let entries =
    [
      put ~token:0 ~inv:0. ~ret:1. "k" "old";
      put ~token:1 ~inv:2. ~ret:3. "k" "a";
      put ~token:2 ~inv:2.5 "k" "race" (* concurrent, never returned *);
    ]
  in
  let issues peek = Linear.durability ~peek entries in
  Alcotest.(check (list string)) "latest acked value is fine" []
    (issues (fun _ -> Some "a"));
  Alcotest.(check (list string)) "racing newer write is fine" []
    (issues (fun _ -> Some "race"));
  Alcotest.(check bool) "lost acked write flagged" true
    (issues (fun _ -> None) <> []);
  Alcotest.(check bool) "stale survivor flagged" true
    (issues (fun _ -> Some "old") <> [])

let test_busy_never_committed () =
  let shed_put ~token ~inv key value =
    { (put ~failed:true ~token ~inv key value) with H.shed = true }
  in
  let violated ?peek entries = Linear.busy_never_committed ?peek entries <> [] in
  Alcotest.(check bool) "shed value observed by a read" true
    (violated
       [
         shed_put ~token:0 ~inv:0. "k" "a";
         get ~token:1 ~inv:1. ~ret:2. "k" (Some "a");
       ]);
  Alcotest.(check bool) "shed value absent from reads" false
    (violated
       [
         shed_put ~token:0 ~inv:0. "k" "a";
         get ~token:1 ~inv:1. ~ret:2. "k" None;
       ]);
  Alcotest.(check bool) "same value legitimately written elsewhere" false
    (violated
       [
         put ~token:0 ~inv:0. ~ret:1. "k" "a";
         get ~token:1 ~inv:2. ~ret:3. "k" (Some "a");
       ]);
  Alcotest.(check bool) "shed value found durable" true
    (violated ~peek:(fun _ -> Some "a") [ shed_put ~token:0 ~inv:0. "k" "a" ]);
  Alcotest.(check bool) "authoritative copy clean" false
    (violated ~peek:(fun _ -> None) [ shed_put ~token:0 ~inv:0. "k" "a" ]);
  (* An ordinary failed (not shed) put constrains nothing: it may have
     taken partial effect. *)
  Alcotest.(check bool) "plain failed put unconstrained" false
    (violated ~peek:(fun _ -> Some "a")
       [
         put ~failed:true ~token:0 ~inv:0. "k" "a";
         get ~token:1 ~inv:1. ~ret:2. "k" (Some "a");
       ])

(* ------------------------------------------------------------------ *)
(* Recorded runtime histories.                                         *)

let vid ~snode ~vnode = Vnode_id.make ~snode ~vnode

let mk_rt ~seed =
  let rt =
    Runtime.create
      ~faults:(Fault.create ~seed ())
      ~pmin:8
      ~approach:(Runtime.Local { vmin = 2 })
      ~rfactor:3 ~read_quorum:2 ~write_quorum:2 ~snodes:4 ~seed ()
  in
  let h = H.create () in
  H.attach h rt;
  for i = 1 to 3 do
    Runtime.create_vnode rt ~id:(vid ~snode:(i mod 4) ~vnode:(i / 4)) ()
  done;
  Runtime.run rt;
  (rt, h)

let full_ok what rt h =
  match
    Linear.full ~peek:(fun key -> Runtime.peek rt ~key) (H.entries h)
  with
  | [] -> ()
  | msgs -> Alcotest.failf "%s:@.%s" what (String.concat "\n" msgs)

(* Replace the last completed get's result — the canonical "lost write"
   mutation the checkers must reject. *)
let mutate_last_get entries ~result =
  let idx = ref (-1) in
  List.iteri
    (fun i (e : H.entry) ->
      match e.op with H.Get _ when H.completed e -> idx := i | _ -> ())
    entries;
  if !idx < 0 then Alcotest.fail "no completed get to mutate";
  List.mapi
    (fun i (e : H.entry) ->
      if i = !idx then
        match e.op with
        | H.Get { key; _ } -> { e with op = H.Get { key; result } }
        | _ -> e
      else e)
    entries

let mutation_rejected what entries =
  match Linear.full (mutate_last_get entries ~result:None) with
  | [] -> Alcotest.failf "%s: mutated lost-write history accepted" what
  | _ -> ()

let test_same_tick_overwrite () =
  let rt, h = mk_rt ~seed:21 in
  (* Two writes to one key in the same engine tick from different
     coordinators, then a read. *)
  Runtime.put rt ~via:1 ~key:"k" ~value:"v1" ();
  Runtime.put rt ~via:2 ~key:"k" ~value:"v2" ();
  Runtime.run rt;
  Runtime.get rt ~via:1 ~key:"k" (fun _ -> ());
  Runtime.run rt;
  full_ok "same-tick overwrite" rt h;
  mutation_rejected "same-tick overwrite" (H.entries h);
  (* A never-written value is just as unlinearizable as a lost one. *)
  match
    Linear.check (mutate_last_get (H.entries h) ~result:(Some "never-written"))
  with
  | [] -> Alcotest.fail "phantom value accepted"
  | _ -> ()

let test_dead_via_reroute () =
  let rt, h = mk_rt ~seed:22 in
  Runtime.put rt ~via:0 ~key:"k" ~value:"v1" ();
  Runtime.run rt;
  Runtime.crash_snode rt 2;
  (* The quorum round re-routes from the next live coordinator. While a
     snode is down the hint timers keep the queue busy, so the drive is
     time-bounded until the restart. *)
  Runtime.put rt ~via:2 ~key:"k" ~value:"v2" ();
  let e = Runtime.engine rt in
  Runtime.run ~until:(Engine.now e +. 0.5) rt;
  Runtime.restart_snode rt 2;
  Runtime.run rt;
  Runtime.get rt ~via:2 ~key:"k" (fun _ -> ());
  Runtime.run rt;
  full_ok "dead-via reroute" rt h;
  mutation_rejected "dead-via reroute" (H.entries h)

let test_hint_drain_race () =
  let rt, h = mk_rt ~seed:23 in
  Runtime.crash_snode rt 1;
  for k = 0 to 5 do
    Runtime.put rt ~via:0 ~key:(Printf.sprintf "k%d" k)
      ~value:(Printf.sprintf "v%d" k) ()
  done;
  let e = Runtime.engine rt in
  Runtime.run ~until:(Engine.now e +. 0.5) rt;
  (* Restart the hinted-at snode and race reads against the drain. *)
  Runtime.restart_snode rt 1;
  for k = 0 to 5 do
    Runtime.get rt ~via:3 ~key:(Printf.sprintf "k%d" k) (fun _ -> ())
  done;
  Runtime.run rt;
  full_ok "hint drain race" rt h;
  mutation_rejected "hint drain race" (H.entries h)

let test_recorded_shed_history () =
  (* A deadline no quorum round can meet: every op is shed with Busy. The
     recorded history must carry the shed marks, pass the full checker
     (including busy-never-committed against the live store), and none of
     the shed values may be durable. *)
  let rt =
    Runtime.create
      ~faults:(Fault.create ~seed:24 ())
      ~pmin:8
      ~approach:(Runtime.Local { vmin = 2 })
      ~rfactor:3 ~read_quorum:2 ~write_quorum:2 ~admission_deadline:1e-9
      ~snodes:4 ~seed:24 ()
  in
  let h = H.create () in
  H.attach h rt;
  for k = 0 to 5 do
    Runtime.put rt ~via:(k mod 4) ~key:(Printf.sprintf "k%d" k)
      ~value:(Printf.sprintf "v%d" k) ()
  done;
  Runtime.run rt;
  for k = 0 to 5 do
    Runtime.get rt ~via:((k + 1) mod 4) ~key:(Printf.sprintf "k%d" k) (fun _ -> ())
  done;
  Runtime.run rt;
  let entries = H.entries h in
  let sheds op_matches =
    List.length
      (List.filter
         (fun (e : H.entry) -> e.shed && op_matches e.op)
         entries)
  in
  Alcotest.(check int) "every put recorded as shed" 6
    (sheds (function H.Put _ -> true | H.Get _ -> false));
  Alcotest.(check int) "every get recorded as shed" 6
    (sheds (function H.Get _ -> true | H.Put _ -> false));
  full_ok "all-shed history" rt h;
  (* Hand-corrupt the store: pretending a shed value committed anyway must
     trip the checker. *)
  match
    Linear.busy_never_committed ~peek:(fun _ -> Some "v3") entries
  with
  | [] -> Alcotest.fail "corrupted store accepted"
  | _ -> ()

let suite =
  [
    Alcotest.test_case "Wing-Gong unit histories" `Quick test_wg_units;
    Alcotest.test_case "per-key operation bound" `Quick test_wg_bound;
    Alcotest.test_case "read-your-writes" `Quick test_read_your_writes;
    Alcotest.test_case "monotonic reads" `Quick test_monotonic_reads;
    Alcotest.test_case "durability of acked writes" `Quick test_durability;
    Alcotest.test_case "recorded: same-tick overwrite" `Quick
      test_same_tick_overwrite;
    Alcotest.test_case "recorded: dead-via reroute" `Quick
      test_dead_via_reroute;
    Alcotest.test_case "recorded: hint drain race" `Quick test_hint_drain_race;
    Alcotest.test_case "busy never committed" `Quick test_busy_never_committed;
    Alcotest.test_case "recorded: all ops shed with Busy" `Quick
      test_recorded_shed_history;
  ]
