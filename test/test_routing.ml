(* Scalable prefix routing: finger geometry, the bounded routing cache
   (hole-free LRU pair-folds), derived key populations, and the headline
   property — lookups issued immediately after churn, against stale
   bounded caches, still converge within O(log N) hops while no cache
   ever exceeds its entry bound. The property runs over 100 seeds. *)

module Runtime = Dht_snode.Runtime
module Engine = Dht_event_sim.Engine
module Fault = Dht_event_sim.Fault
module Fingers = Dht_cluster.Fingers
module Keygen = Dht_workload.Keygen
module Rng = Dht_prng.Rng
open Dht_core
open Dht_hashspace

let check = Alcotest.check
let bits = Space.bits Space.default

let test_finger_geometry () =
  check Alcotest.int "1 snode floors at level 1" 1
    (Fingers.level ~bits ~snodes:1);
  check Alcotest.int "100 snodes" 7 (Fingers.level ~bits ~snodes:100);
  check Alcotest.int "1000 snodes" 10 (Fingers.level ~bits ~snodes:1000);
  check Alcotest.int "10000 snodes" 14 (Fingers.level ~bits ~snodes:10000);
  check Alcotest.int "exact powers stay exact" 10
    (Fingers.level ~bits ~snodes:1024);
  check Alcotest.int "level clamps to the space" bits
    (Fingers.level ~bits ~snodes:max_int);
  (* Regions partition the point set and stewards stay in range. *)
  let level = Fingers.level ~bits ~snodes:100 in
  check Alcotest.int "region of 0" 0 (Fingers.region ~bits ~level 0);
  check Alcotest.int "region of the top point"
    (Fingers.regions ~level - 1)
    (Fingers.region ~bits ~level (Space.size Space.default - 1));
  for region = 0 to Fingers.regions ~level - 1 do
    let sd = Fingers.steward ~snodes:100 ~region in
    check Alcotest.bool "steward in range" true (sd >= 0 && sd < 100);
    check Alcotest.int "steward deterministic" sd
      (Fingers.steward ~snodes:100 ~region)
  done

let test_population () =
  (* Derived keys: a million-key population costs nothing and two
     populations with the same salt agree key-for-key. *)
  let a = Keygen.Population.create ~size:1_000_000 () in
  let b = Keygen.Population.create ~size:1_000_000 () in
  check Alcotest.int "size" 1_000_000 (Keygen.Population.size a);
  check Alcotest.string "first member" "pop-0" (Keygen.Population.nth a 0);
  check Alcotest.string "members agree across instances"
    (Keygen.Population.nth a 999_999)
    (Keygen.Population.nth b 999_999);
  let rng = Rng.of_int 7 and rng' = Rng.of_int 7 in
  for _ = 1 to 100 do
    check Alcotest.string "sampling is seed-deterministic"
      (Keygen.Population.sample a rng)
      (Keygen.Population.sample b rng')
  done;
  Alcotest.check_raises "index out of range"
    (Invalid_argument "Keygen.Population.nth: index") (fun () ->
      ignore (Keygen.Population.nth a 1_000_000))

(* The eviction step in isolation: folding sibling leaf-pairs with
   [learn] shrinks the cardinality one entry at a time and never breaks
   coverage — the exact loop the runtime runs when a cache overflows. *)
let test_fold_keeps_coverage () =
  let space = Space.default in
  let m = Point_map.create space in
  for i = 0 to 15 do
    Point_map.add m (Span.make space ~level:4 ~index:i) i
  done;
  let folds = ref 0 in
  while Point_map.cardinal m > 1 do
    let picked = ref None in
    Point_map.iter_pairs m (fun parent lo _hi ->
        if !picked = None then picked := Some (parent, lo));
    (match !picked with
    | None -> Alcotest.fail "coverage guarantees a foldable pair"
    | Some (parent, keep) ->
        let before = Point_map.cardinal m in
        Point_map.learn m parent keep;
        incr folds;
        check Alcotest.int "each fold drops exactly one entry" (before - 1)
          (Point_map.cardinal m));
    match Coverage.check space (Point_map.spans m) with
    | Ok () -> ()
    | Error e ->
        Alcotest.failf "coverage broken after fold: %a" Coverage.pp_error e
  done;
  check Alcotest.int "16 leaves fold in 15 steps" 15 !folds

(* Shared churn harness: grow a cluster with bounded routing, then crash
   a snode, restart it, and land a vnode join — all inside the window the
   lookups are issued in, so they run against stale caches. *)
let churned_lookups ~snodes ~vnodes ~route_cap ~max_hops ~lookups ~seed =
  let faults = Some (Fault.create ~drop:0. ~seed ()) in
  let rt =
    Runtime.create ~pmin:8
      ~approach:(Runtime.Local { vmin = 4 })
      ?faults ~route_cap ~max_hops ~snodes ~seed ()
  in
  for i = 1 to vnodes - 1 do
    Runtime.create_vnode rt
      ~id:(Vnode_id.make ~snode:(i mod snodes) ~vnode:(i / snodes))
      ()
  done;
  Runtime.run rt;
  Runtime.route_refresh_round rt;
  Runtime.run rt;
  let engine = Runtime.engine rt in
  let t0 = Engine.now engine +. 0.01 in
  let victim = 1 mod snodes in
  Engine.at engine ~time:t0 (fun () -> Runtime.crash_snode rt victim);
  Engine.at engine ~time:(t0 +. 0.02) (fun () ->
      Runtime.restart_snode rt victim);
  Engine.at engine ~time:(t0 +. 0.01) (fun () ->
      Runtime.create_vnode rt
        ~id:(Vnode_id.make ~snode:(vnodes mod snodes) ~vnode:(vnodes / snodes))
        ());
  let pop = Keygen.Population.create ~size:100_000 () in
  let krng = Rng.of_int (seed + 13) in
  let answered = ref 0 in
  let hops0 = Runtime.route_hops rt in
  for i = 1 to lookups do
    let key = Keygen.Population.sample pop krng in
    (* From just after the restart onward: stale caches everywhere — the
       victim's was rebuilt from bootstrap, everyone else holds entries
       the join invalidates. *)
    Engine.at engine
      ~time:(t0 +. 0.021 +. (float_of_int i *. 1e-4))
      (fun () ->
        Runtime.get rt ~via:(i mod snodes) ~key (fun _ -> incr answered))
  done;
  Runtime.run rt;
  let window = Runtime.route_hops rt in
  Array.iteri (fun h c -> window.(h) <- c - hops0.(h)) window;
  (rt, window, !answered)

let test_churn_convergence_100_seeds () =
  let snodes = 12 and vnodes = 12 and route_cap = 16 and lookups = 40 in
  (* The hop bound under test: c·log2 N + k with c = 2, k = 8. [max_hops]
     is far above it so the bound is measured, not enforced by backoff
     truncation. Convergence is a tail property: a walk that lands in a
     stale-cache cycle mid-churn legitimately burns hops until the
     random-restart backoff rescues it, so the bound holds for at least
     99% of lookups in aggregate rather than for every single walk. *)
  let bound =
    int_of_float (2. *. (log (float_of_int snodes) /. log 2.)) + 8
  in
  let total = ref 0 and over = ref 0 in
  for seed = 0 to 99 do
    let rt, window, answered =
      churned_lookups ~snodes ~vnodes ~route_cap ~max_hops:64 ~lookups ~seed
    in
    check Alcotest.int
      (Printf.sprintf "seed %d: every lookup answered" seed)
      lookups answered;
    Array.iteri
      (fun h c ->
        if c > 0 then begin
          total := !total + c;
          if h > bound then over := !over + c
        end)
      window;
    (* Occupancy never exceeded the bound, on any snode, at any time. *)
    let stats = Runtime.route_cache_stats rt in
    check Alcotest.bool
      (Printf.sprintf "seed %d: peak occupancy %d within cap" seed
         stats.Runtime.rcs_peak)
      true
      (stats.Runtime.rcs_peak <= route_cap);
    for sid = 0 to snodes - 1 do
      check Alcotest.bool
        (Printf.sprintf "seed %d: snode %d cache within cap" seed sid)
        true
        (Runtime.route_cache_entries rt sid <= route_cap)
    done;
    (* The audit re-checks coverage and the cap from the outside. *)
    (match Runtime.audit rt with
    | Ok () -> ()
    | Error l -> Alcotest.failf "seed %d: audit: %s" seed (String.concat "; " l))
  done;
  check Alcotest.bool
    (Printf.sprintf "%d of %d lookups over the %d-hop bound (≤1%% allowed)"
       !over !total bound)
    true
    (float_of_int !over <= 0.01 *. float_of_int !total)

let test_legacy_unbounded_by_default () =
  (* route_cap = 0 keeps the legacy path: no probes counted, no
     evictions, caches free to grow past any bound. *)
  let rt =
    Runtime.create ~pmin:8 ~approach:(Runtime.Local { vmin = 4 }) ~snodes:4
      ~seed:11 ()
  in
  for i = 1 to 15 do
    Runtime.create_vnode rt ~id:(Vnode_id.make ~snode:(i mod 4) ~vnode:(i / 4)) ()
  done;
  Runtime.run rt;
  let stats = Runtime.route_cache_stats rt in
  check Alcotest.int "no hits counted" 0 stats.Runtime.rcs_hits;
  check Alcotest.int "no misses counted" 0 stats.Runtime.rcs_misses;
  check Alcotest.int "no evictions" 0 stats.Runtime.rcs_evictions;
  check Alcotest.int "legacy default max_hops" 4 (Runtime.max_hops rt);
  check Alcotest.int "cap reads back as 0" 0 (Runtime.route_cap rt)

let test_create_validation () =
  Alcotest.check_raises "cap below pmin refused"
    (Invalid_argument "Runtime.create: route_cap must be 0 or >= pmin")
    (fun () ->
      ignore
        (Runtime.create ~pmin:32 ~route_cap:16 ~snodes:2 ~seed:0 ()));
  Alcotest.check_raises "max_hops floor"
    (Invalid_argument "Runtime.create: max_hops < 1") (fun () ->
      ignore (Runtime.create ~max_hops:0 ~snodes:2 ~seed:0 ()))

let test_routing_scaling_smoke () =
  (* The sweep entry end-to-end at a small size: gates must hold and the
     battery must be clean. *)
  let r =
    Dht_experiments.Extensions.routing_scaling ~snodes:24 ~ops:600
      ~keys:50_000 ~seed:5 ()
  in
  let open Dht_experiments.Extensions in
  check Alcotest.bool "window saw ops" true (r.rs_ops > 500);
  let bound = 2. *. (log (float_of_int r.rs_snodes) /. log 2.) in
  check Alcotest.bool
    (Printf.sprintf "p99 hops %.1f within 2·log2 N = %.1f" r.rs_hops_p99 bound)
    true (r.rs_hops_p99 <= bound);
  check Alcotest.bool "cache bounded" true
    (r.rs_cache_entries_max <= r.rs_cap);
  check Alcotest.bool "messages per op finite and positive" true
    (r.rs_msgs_per_op > 0. && Float.is_finite r.rs_msgs_per_op);
  check (Alcotest.list Alcotest.string) "battery clean" [] r.rs_findings;
  check (Alcotest.list Alcotest.string) "durability clean" [] r.rs_linear

let suite =
  [
    Alcotest.test_case "finger geometry" `Quick test_finger_geometry;
    Alcotest.test_case "derived key population" `Quick test_population;
    Alcotest.test_case "pair-folds preserve coverage" `Quick
      test_fold_keeps_coverage;
    Alcotest.test_case "churn convergence over 100 seeds" `Slow
      test_churn_convergence_100_seeds;
    Alcotest.test_case "route_cap=0 is the legacy path" `Quick
      test_legacy_unbounded_by_default;
    Alcotest.test_case "create validates routing params" `Quick
      test_create_validation;
    Alcotest.test_case "scaling sweep smoke" `Slow test_routing_scaling_smoke;
  ]
