(* Observability layer: causal span trees, critical-path decomposition,
   heat EWMA/skew summaries, the gray-failure health scorer and the
   bounded trace sinks.

   The centerpiece is a 100-seed property over the quorum runtime with
   causal tracing on: every span log must be well-formed (parents exist,
   are older and share the trace id; every edge walks up to its op root),
   the op roots must match the history recorder's token set exactly, and
   the queue/network/service/retransmit decomposition must sum to the
   runtime's own latency measurement for every op. The last 40 seeds run
   under a lossy network, so retransmitted frames must keep their trace id
   while logging a fresh span per attempt. *)

module Runtime = Dht_snode.Runtime
module Engine = Dht_event_sim.Engine
module Fault = Dht_event_sim.Fault
module Trace = Dht_telemetry.Trace
module Registry = Dht_telemetry.Registry
module Causal = Dht_obsv.Causal
module Heat = Dht_obsv.Heat
module Health = Dht_obsv.Health
module Jsonl = Dht_obsv.Jsonl
open Dht_core

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Span-tree well-formedness over the quorum runtime                    *)

let nonempty_lines s =
  String.split_on_char '\n' s |> List.filter (fun l -> String.trim l <> "")

(* One seeded quorum workload with causal tracing to a buffer: a few
   balancing events, then replicated puts and gets. Returns the parsed
   span log, the recorder's op tokens, and the raw trace lines. *)
let run_traced ?(drop = 0.) ~seed () =
  let buf = Buffer.create 8192 in
  let trace = Trace.to_buffer Trace.Jsonl buf in
  let faults = if drop > 0. then Some (Fault.create ~drop ~seed ()) else None in
  let rt =
    Runtime.create ?faults ~rfactor:3 ~read_quorum:2 ~write_quorum:2 ~trace
      ~causal:true ~snodes:3 ~seed ()
  in
  let tokens = ref [] in
  Runtime.set_recorder rt
    (Some
       (function
       | Runtime.Oplog.Invoke { token; _ } -> tokens := token :: !tokens
       | _ -> ()));
  for i = 1 to 3 do
    Runtime.create_vnode rt
      ~id:(Vnode_id.make ~snode:(i mod 3) ~vnode:(i / 3))
      ()
  done;
  Runtime.run rt;
  for i = 0 to 9 do
    Runtime.put rt ~via:(i mod 3)
      ~key:(Printf.sprintf "k%d" i)
      ~value:(Printf.sprintf "v%d" i)
      ()
  done;
  Runtime.run rt;
  for i = 0 to 9 do
    Runtime.get rt ~via:((i + 1) mod 3) ~key:(Printf.sprintf "k%d" i) ignore
  done;
  Runtime.run rt;
  Trace.close trace;
  let lines = nonempty_lines (Buffer.contents buf) in
  (Causal.of_lines lines, List.rev !tokens, lines)

let assert_well_formed ~seed (t, tokens, _) =
  let label msg = Printf.sprintf "seed %d: %s" seed msg in
  check Alcotest.(list string) (label "no malformed lines") []
    (Causal.malformed t);
  check Alcotest.(list string) (label "span-tree audit") [] (Causal.audit t);
  check Alcotest.(list string) (label "roots match recorded ops") []
    (Causal.check_roots t ~expected:tokens);
  check Alcotest.int (label "every op has a root") (List.length tokens)
    (Causal.op_count t);
  let a = Causal.analyze t in
  check Alcotest.int (label "no unfinished ops") 0 a.Causal.unfinished;
  check Alcotest.int (label "no broken critical paths") 0 a.Causal.broken;
  check Alcotest.(list string) (label "decomposition sums to latency") []
    (Causal.sum_mismatches a);
  a

let test_span_trees_clean_seeds () =
  for seed = 0 to 59 do
    let a = assert_well_formed ~seed (run_traced ~seed ()) in
    check Alcotest.int
      (Printf.sprintf "seed %d: all 20 ops analyzed" seed)
      20
      (List.length a.Causal.complete)
  done

let test_span_trees_faulty_seeds () =
  (* Lossy network: the reliable layer retransmits, and every retransmitted
     frame must reuse the edge's trace id under a fresh span id — counted
     here as strictly more msg.xmit than msg.send events, while the audit
     (which resolves each xmit against its edge, trace id included) stays
     clean. *)
  let retransmitting = ref 0 in
  for seed = 60 to 99 do
    let ((_, _, lines) as r) = run_traced ~drop:0.15 ~seed () in
    ignore (assert_well_formed ~seed r);
    let contains line sub =
      let n = String.length line and m = String.length sub in
      let rec go i = i + m <= n && (String.sub line i m = sub || go (i + 1)) in
      go 0
    in
    let count sub = List.length (List.filter (fun l -> contains l sub) lines) in
    let sends = count "\"name\":\"msg.send\""
    and xmits = count "\"name\":\"msg.xmit\"" in
    check Alcotest.bool
      (Printf.sprintf "seed %d: every edge transmitted" seed)
      true (xmits >= sends);
    if xmits > sends then incr retransmitting
  done;
  check Alcotest.bool "retransmissions observed across the fault sweep" true
    (!retransmitting > 0)

let test_trace_determinism_with_causal () =
  (* Same seed, same causal trace, byte for byte. *)
  let _, _, a = run_traced ~seed:7 () and _, _, b = run_traced ~seed:7 () in
  check Alcotest.(list string) "causal traces identical" a b

(* ------------------------------------------------------------------ *)
(* Analyzer units on a hand-built trace                                 *)

let test_analyzer_hand_built () =
  (* One op: root at t=0, an edge sent at 1.0, transmitted at 1.010 and
     1.020 (one retransmit), delivered at 1.025, completing the op. *)
  let lines =
    [
      {|{"ts":0,"kind":"instant","name":"op.begin","cat":"causal","tid":0,"args":{"trace":7,"span":0,"op":"put"}}|};
      {|{"ts":1,"kind":"instant","name":"msg.send","cat":"causal","tid":0,"args":{"trace":7,"span":1,"parent":0,"src":0,"dst":1,"tag":"routed:put","hop":0,"bytes":80}}|};
      {|{"ts":1.01,"kind":"instant","name":"msg.xmit","cat":"causal","tid":0,"args":{"trace":7,"span":2,"parent":1,"attempt":1}}|};
      {|{"ts":1.02,"kind":"instant","name":"msg.xmit","cat":"causal","tid":0,"args":{"trace":7,"span":3,"parent":1,"attempt":2}}|};
      {|{"ts":1.025,"kind":"instant","name":"msg.recv","cat":"causal","tid":1,"args":{"trace":7,"span":1,"dst":1}}|};
      {|{"ts":1.045,"kind":"instant","name":"op.end","cat":"causal","tid":1,"args":{"trace":7,"span":4,"parent":1,"outcome":"ok"}}|};
      {|{"ts":0,"kind":"span","name":"op","cat":"sim","tid":0,"dur":1.045,"args":{"op":"put","token":7}}|};
    ]
  in
  let t = Causal.of_lines lines in
  check Alcotest.(list string) "clean" [] (Causal.malformed t);
  check Alcotest.(list string) "audited" [] (Causal.audit t);
  let a = Causal.analyze t in
  check Alcotest.(list string) "sums" [] (Causal.sum_mismatches a);
  match a.Causal.complete with
  | [ az ] ->
      let b = az.Causal.a_breakdown in
      let feq name expected got =
        check (Alcotest.float 1e-9) name expected got
      in
      feq "queue: send to first xmit" 0.01 b.Causal.queue;
      feq "retransmit: first to last xmit" 0.01 b.Causal.retransmit;
      feq "network: last xmit to recv" 0.005 b.Causal.network;
      (* service = total - edge time = 1.045 - 0.025 *)
      feq "service residual" 1.02 b.Causal.service;
      feq "total" 1.045 b.Causal.total;
      check Alcotest.(option (float 1e-9)) "recorded" (Some 1.045)
        az.Causal.a_recorded;
      (match az.Causal.a_path with
      | [ s ] ->
          check Alcotest.int "attempts" 2 s.Causal.s_attempts;
          check Alcotest.string "tag" "routed:put" s.Causal.s_tag
      | _ -> Alcotest.fail "expected one critical-path step")
  | _ -> Alcotest.fail "expected exactly one complete op"

let test_analyzer_catches_breakage () =
  (* A child pointing at a missing parent must surface in malformed; an
     op.end naming an unknown span in the audit. *)
  let orphan =
    Causal.of_lines
      [
        {|{"ts":0,"kind":"instant","name":"msg.send","cat":"causal","tid":0,"args":{"trace":1,"span":5,"parent":99,"src":0,"dst":1,"tag":"x","hop":0,"bytes":1}}|};
      ]
  in
  check Alcotest.bool "orphan edge reported" true
    (Causal.audit orphan <> [] || Causal.malformed orphan <> []);
  let bad = Causal.of_lines [ "{not json" ] in
  check Alcotest.int "unparseable line counted" 1
    (List.length (Causal.malformed bad))

(* ------------------------------------------------------------------ *)
(* Heat EWMA cells and skew summaries                                   *)

let test_heat_ewma_decay () =
  Alcotest.check_raises "tau must be positive"
    (Invalid_argument "Heat.cell: tau must be positive") (fun () ->
      ignore (Heat.cell ~tau:0.));
  let c = Heat.cell ~tau:2.0 in
  check (Alcotest.float 1e-12) "cold cell is zero" 0. (Heat.value c ~now:5.);
  Heat.charge c ~now:0. ();
  check (Alcotest.float 1e-12) "fresh charge" 1. (Heat.value c ~now:0.);
  check (Alcotest.float 1e-12) "one tau of decay" (exp (-1.))
    (Heat.value c ~now:2.);
  check (Alcotest.float 1e-12) "two tau of decay" (exp (-2.))
    (Heat.value c ~now:4.);
  Heat.charge c ~now:2. ~weight:3. ();
  check (Alcotest.float 1e-12) "charge adds to the decayed value"
    (exp (-1.) +. 3.)
    (Heat.value c ~now:2.);
  check Alcotest.int "count never decays" 2 (Heat.count c)

let test_gini () =
  check (Alcotest.float 1e-12) "uniform load has zero Gini" 0.
    (Heat.gini [| 3.; 3.; 3.; 3. |]);
  check (Alcotest.float 1e-12) "all mass on one of four" 0.75
    (Heat.gini [| 0.; 0.; 0.; 4. |]);
  (* Monotonicity: moving mass from a poor partition to a rich one can
     only increase inequality. *)
  let g1 = Heat.gini [| 1.; 1.; 1.; 5. |] in
  let g2 = Heat.gini [| 0.; 1.; 1.; 6. |] in
  check Alcotest.bool "regressive transfer raises Gini" true (g2 > g1);
  check Alcotest.bool "Gini in [0, 1)" true (g1 >= 0. && g2 < 1.);
  check (Alcotest.float 1e-12) "empty vector" 0. (Heat.gini [||]);
  check (Alcotest.float 1e-12) "balanced sigma" 0.
    (Heat.sigma_pct [| 2.; 2.; 2. |]);
  check Alcotest.bool "skewed sigma positive" true
    (Heat.sigma_pct [| 0.; 0.; 6. |] > 100.);
  check
    Alcotest.(list (pair string (float 1e-12)))
    "top_k picks the largest, descending"
    [ ("b", 9.); ("c", 4.) ]
    (Heat.top_k ~k:2 [ ("a", 1.); ("b", 9.); ("c", 4.); ("d", 2.) ])

(* ------------------------------------------------------------------ *)
(* Health scorer                                                        *)

let healthy ~observer ~peer =
  {
    Health.observer;
    peer;
    srtt = 0.001;
    rttvar = 0.0002;
    strikes = 0;
    suspect = false;
    outbox = 1;
    backlog = 0;
  }

let test_health_scorer () =
  let samples =
    List.concat_map
      (fun observer ->
        List.filter_map
          (fun peer ->
            if peer = observer then None
            else if peer = 3 then
              (* The gray-failed peer: every observer sees a bloated RTT
                 estimate, strikes and a deep outbox. *)
              Some
                {
                  Health.observer;
                  peer;
                  srtt = 0.04;
                  rttvar = 0.01;
                  strikes = 2;
                  suspect = false;
                  outbox = 12;
                  backlog = 6;
                }
            else Some (healthy ~observer ~peer))
          [ 0; 1; 2; 3 ])
      [ 0; 1; 2; 3 ]
  in
  check Alcotest.(option int) "worst is the gray-failed peer" (Some 3)
    (Health.worst samples);
  let scores = Health.scores samples in
  check Alcotest.int "every peer scored" 4 (List.length scores);
  (match scores with
  | (worst, s) :: rest ->
      check Alcotest.int "ranking head" 3 worst;
      List.iter
        (fun (_, s') ->
          check Alcotest.bool "worst-first order" true (s >= s'))
        rest
  | [] -> Alcotest.fail "no scores");
  let healthy_scores = List.filter (fun (p, _) -> p <> 3) scores in
  List.iter
    (fun (p, s) ->
      check Alcotest.bool
        (Printf.sprintf "peer %d scores near the median" p)
        true
        (s > 0.5 && s < 2.))
    healthy_scores;
  check Alcotest.(option int) "empty telemetry scores nobody" None
    (Health.worst []);
  (* Suspicion alone must outrank pure queue depth at equal RTT. *)
  let suspectd = { (healthy ~observer:0 ~peer:1) with Health.suspect = true } in
  let queued = { (healthy ~observer:0 ~peer:2) with Health.outbox = 4 } in
  check Alcotest.(option int) "suspicion dominates" (Some 1)
    (Health.worst [ suspectd; queued ])

(* ------------------------------------------------------------------ *)
(* Bounded sinks and the JSON reader                                    *)

let test_trace_limit () =
  let buf = Buffer.create 256 in
  let tr = Trace.to_buffer ~limit:3 Trace.Jsonl buf in
  for i = 0 to 4 do
    Trace.instant tr ~ts:(float_of_int i) ~tid:0 ~name:"e" []
  done;
  Trace.close tr;
  check Alcotest.int "sink capped" 3 (Trace.events tr);
  check Alcotest.int "excess counted" 2 (Trace.dropped tr);
  check Alcotest.int "exactly the cap written" 3
    (List.length (nonempty_lines (Buffer.contents buf)));
  let unbounded = Trace.to_buffer Trace.Jsonl (Buffer.create 64) in
  Trace.instant unbounded ~ts:0. ~tid:0 ~name:"e" [];
  Trace.close unbounded;
  check Alcotest.int "unbounded sink never drops" 0 (Trace.dropped unbounded)

let test_jsonl_reader () =
  (match Jsonl.parse {|{"a":1.5,"b":"x\ny","c":[true,null],"d":{"e":-2}}|} with
  | Error e -> Alcotest.fail e
  | Ok v ->
      check Alcotest.(option (float 1e-12)) "number" (Some 1.5)
        (Jsonl.to_float (Jsonl.member "a" v));
      check Alcotest.(option string) "escaped string" (Some "x\ny")
        (Jsonl.to_string (Jsonl.member "b" v));
      check Alcotest.(option int) "nested int" (Some (-2))
        (Jsonl.to_int (Jsonl.member "e" (Option.get (Jsonl.member "d" v))));
      check Alcotest.bool "missing member" true (Jsonl.member "z" v = None));
  check Alcotest.bool "truncated input fails" true
    (Result.is_error (Jsonl.parse {|{"a":|}));
  check Alcotest.bool "trailing garbage fails" true
    (Result.is_error (Jsonl.parse {|{} {}|}))

(* ------------------------------------------------------------------ *)
(* Deterministic heat export through the registry                       *)

let heat_run ~seed =
  let rt = Runtime.create ~heat:true ~rfactor:3 ~read_quorum:2
      ~write_quorum:2 ~snodes:3 ~seed ()
  in
  for i = 0 to 19 do
    Runtime.put rt ~via:(i mod 3)
      ~key:(Printf.sprintf "key%d" i)
      ~value:(String.make 8 'x')
      ()
  done;
  Runtime.run rt;
  rt

let test_heat_rows_and_registry_determinism () =
  let rt = heat_run ~seed:11 in
  let rows = Runtime.heat_rows rt in
  check Alcotest.bool "accesses recorded" true (rows <> []);
  let sorted = List.sort
      (fun (a : Runtime.heat_row) b ->
        Dht_hashspace.Span.compare a.Runtime.hr_span b.Runtime.hr_span)
      rows
  in
  check Alcotest.bool "rows sorted by span" true (rows = sorted);
  List.iter
    (fun (r : Runtime.heat_row) ->
      check Alcotest.bool "heated partitions have a live owner" true
        (r.Runtime.hr_owner >= 0 && r.Runtime.hr_owner < 3);
      check Alcotest.bool "counts back the EWMA" true
        (r.Runtime.hr_read_count + r.Runtime.hr_write_count
         + r.Runtime.hr_repl_count
        > 0))
    rows;
  (* The registry dump is deterministic: same seed, same rows, same order
     (the registry sorts by (name, labels)). *)
  let dump rt =
    let reg = Registry.create () in
    Runtime.record_metrics rt reg;
    Registry.csv_rows reg
  in
  let a = dump rt and b = dump (heat_run ~seed:11) in
  check Alcotest.(list (list string)) "identical dumps across runs" a b;
  check Alcotest.bool "heat series exported" true
    (List.exists
       (fun row -> List.exists (fun c -> c = "heat.reads") row)
       a)

let test_heat_off_by_default () =
  let rt = Runtime.create ~snodes:3 ~seed:1 () in
  Runtime.put rt ~key:"k" ~value:"v" ();
  Runtime.run rt;
  check Alcotest.int "no heat table unless armed" 0
    (List.length (Runtime.heat_rows rt))

let suite =
  [
    Alcotest.test_case "span trees: 60 clean seeds" `Slow
      test_span_trees_clean_seeds;
    Alcotest.test_case "span trees: 40 lossy seeds retransmit" `Slow
      test_span_trees_faulty_seeds;
    Alcotest.test_case "causal trace is deterministic" `Quick
      test_trace_determinism_with_causal;
    Alcotest.test_case "decomposition on a hand-built trace" `Quick
      test_analyzer_hand_built;
    Alcotest.test_case "analyzer reports breakage" `Quick
      test_analyzer_catches_breakage;
    Alcotest.test_case "heat EWMA decay" `Quick test_heat_ewma_decay;
    Alcotest.test_case "Gini and sigma skew summaries" `Quick test_gini;
    Alcotest.test_case "health scorer ranks the gray peer worst" `Quick
      test_health_scorer;
    Alcotest.test_case "bounded sinks count drops" `Quick test_trace_limit;
    Alcotest.test_case "jsonl reader round-trips sink output" `Quick
      test_jsonl_reader;
    Alcotest.test_case "heat rows and deterministic export" `Quick
      test_heat_rows_and_registry_determinism;
    Alcotest.test_case "heat off by default" `Quick test_heat_off_by_default;
  ]
