(* The schedule explorer end to end: the mutation-mode self-test must
   find a planted-loss schedule and shrink it to a small replayable
   repro; the protected sweep must come back clean; committed repro
   artifacts must replay to the same failure; shrinking must strip
   superfluous tweaks. *)

module Explorer = Dht_check.Explorer
module Scenarios = Dht_check.Scenarios
module Schedule = Dht_check.Schedule

(* Under `dune runtest` the cwd is the test directory (the artifact is a
   declared dep); under `dune exec` from the project root it is not. *)
let repro_path =
  if Sys.file_exists "repros/lost-acked-write.sched" then
    "repros/lost-acked-write.sched"
  else "test/repros/lost-acked-write.sched"

let test_mutation_selftest () =
  let sc = Scenarios.kv ~name:"kv-mutate" ~protect:false () in
  match
    Explorer.explore ~kinds:[ `Drop ] ~rounds:30 ~max_tweaks:3 sc
      ~seeds:[ 1; 2; 3; 4; 5 ]
  with
  | None -> Alcotest.fail "mutation-mode explorer found nothing"
  | Some (o : Explorer.outcome) ->
      Alcotest.(check bool) "failures reported" true (o.failures <> []);
      Alcotest.(check bool) "shrunk schedule is small" true
        (Schedule.length o.schedule <= 25);
      (* Replay determinism: the same schedule reproduces the same
         failure, run after run. *)
      let a = Explorer.run sc o.schedule in
      let b = Explorer.run sc o.schedule in
      Alcotest.(check (list string)) "replay reproduces" a.failures b.failures;
      Alcotest.(check bool) "replay still fails" true (a.failures <> [])

let test_protected_sweep () =
  let sc = Scenarios.kv () in
  match
    Explorer.explore ~rounds:5 ~max_tweaks:3 sc ~seeds:[ 31; 32 ]
  with
  | None -> ()
  | Some (o : Explorer.outcome) ->
      Alcotest.failf "protected scenario failed under %s:@.%s"
        (Schedule.to_string o.schedule)
        (String.concat "\n" o.failures)

let load_repro () =
  match Schedule.load ~path:repro_path with
  | Error m -> Alcotest.failf "cannot load %s: %s" repro_path m
  | Ok sched -> (
      match Scenarios.by_name sched.Schedule.scenario with
      | None ->
          Alcotest.failf "unknown scenario %S in repro"
            sched.Schedule.scenario
      | Some sc -> (sc, sched))

let test_repro_replays () =
  let sc, sched = load_repro () in
  let o = Explorer.run sc sched in
  match o.Explorer.failures with
  | [] -> Alcotest.failf "repro %s no longer fails" repro_path
  | msgs ->
      (* The committed artifact pins a lost acknowledged write. *)
      let mentions_loss m =
        let has affix =
          let n = String.length affix and len = String.length m in
          let rec go i =
            i + n <= len && (String.sub m i n = affix || go (i + 1))
          in
          go 0
        in
        has "durability" || has "lost" || has "exception"
      in
      Alcotest.(check bool) "failure is a lost write" true
        (List.exists mentions_loss msgs)

let test_shrink_strips_superfluous () =
  let sc, sched = load_repro () in
  (* linger = 0 in this scenario, so a flush tweak is a pure no-op; the
     padded schedule still fails and shrinking must strip the pad. *)
  let padded =
    { sched with Schedule.tweaks = Schedule.Flush { site = 0 } :: sched.tweaks }
  in
  let padded_run = Explorer.run sc padded in
  Alcotest.(check bool) "padded schedule still fails" true
    (padded_run.Explorer.failures <> []);
  let shrunk = Explorer.shrink sc padded in
  Alcotest.(check bool) "pad removed" true
    (Schedule.length shrunk <= Schedule.length sched);
  Alcotest.(check bool) "shrunk still fails" true
    ((Explorer.run sc shrunk).Explorer.failures <> [])

let suite =
  [
    Alcotest.test_case "mutation-mode self-test finds the loss" `Slow
      test_mutation_selftest;
    Alcotest.test_case "protected sweep is clean" `Slow test_protected_sweep;
    Alcotest.test_case "committed repro replays" `Quick test_repro_replays;
    Alcotest.test_case "shrink strips superfluous tweaks" `Quick
      test_shrink_strips_superfluous;
  ]
