(* Tests for Dht_telemetry: histogram geometry, quantiles, merge,
   the labeled registry, and the seeded trace-determinism pin. *)

module Histogram = Dht_telemetry.Histogram
module Registry = Dht_telemetry.Registry
module Trace = Dht_telemetry.Trace
module Runtime = Dht_snode.Runtime
module Rng = Dht_prng.Rng

let check = Alcotest.check

(* --- Histogram: bucket boundaries --- *)

let test_bucket_boundaries () =
  let h = Histogram.create ~lo:1.0 ~growth:2.0 ~bins:4 () in
  (* Buckets: [1,2) [2,4) [4,8) [8,16); below 1 underflow, >= 16 overflow. *)
  check Alcotest.int "below lo is underflow" (-1) (Histogram.bucket_index h 0.5);
  check Alcotest.int "zero is underflow" (-1) (Histogram.bucket_index h 0.0);
  check Alcotest.int "lo lands in bucket 0" 0 (Histogram.bucket_index h 1.0);
  check Alcotest.int "just under edge stays" 0 (Histogram.bucket_index h 1.999);
  (* A boundary value belongs to the bucket whose lower edge it equals,
     despite log () rounding. *)
  check Alcotest.int "edge 2 opens bucket 1" 1 (Histogram.bucket_index h 2.0);
  check Alcotest.int "edge 4 opens bucket 2" 2 (Histogram.bucket_index h 4.0);
  check Alcotest.int "edge 8 opens bucket 3" 3 (Histogram.bucket_index h 8.0);
  check Alcotest.int "top edge is overflow" 4 (Histogram.bucket_index h 16.0);
  check Alcotest.int "far overflow" 4 (Histogram.bucket_index h 1e9);
  let lo, hi = Histogram.bucket_bounds h 2 in
  check (Alcotest.float 1e-9) "bounds lo" 4.0 lo;
  check (Alcotest.float 1e-9) "bounds hi" 8.0 hi

let test_bucket_edges_against_drift () =
  (* Every computed lower edge must land in its own bucket for a geometry
     whose edges are not exactly representable. *)
  let h = Histogram.create ~lo:1e-6 ~growth:1.7 ~bins:48 () in
  for i = 0 to 47 do
    let lo, _ = Histogram.bucket_bounds h i in
    check Alcotest.int (Printf.sprintf "edge of bucket %d" i) i
      (Histogram.bucket_index h lo)
  done

let test_observe_rejects_bad_values () =
  let h = Histogram.create () in
  (match Histogram.observe h (-1.0) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "negative accepted");
  (match Histogram.observe h nan with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "nan accepted")

(* --- Histogram: quantiles --- *)

let test_quantile_monotone =
  QCheck.Test.make ~count:200 ~name:"quantile is monotone in q"
    QCheck.(pair (list_of_size Gen.(1 -- 200) (float_bound_exclusive 1e3))
              (pair (float_bound_inclusive 1.) (float_bound_inclusive 1.)))
    (fun (xs, (q1, q2)) ->
      let h = Histogram.create ~lo:1e-3 ~growth:2.0 ~bins:24 () in
      List.iter (fun x -> Histogram.observe h (abs_float x)) xs;
      let q1, q2 = (Float.min q1 q2, Float.max q1 q2) in
      Histogram.quantile h q1 <= Histogram.quantile h q2)

let test_quantile_brackets_observations () =
  let h = Histogram.create ~lo:1e-3 ~growth:2.0 ~bins:30 () in
  let rng = Rng.of_int 7 in
  let xs = Array.init 500 (fun _ -> Rng.float rng *. 100.) in
  Array.iter (Histogram.observe h) xs;
  Array.sort compare xs;
  (* The quantile is the upper edge of the rank's bucket: an over-estimate
     of the exact order statistic, but never by more than one growth
     factor. *)
  List.iter
    (fun q ->
      let exact = xs.(int_of_float (q *. 499.)) in
      let approx = Histogram.quantile h q in
      check Alcotest.bool (Printf.sprintf "q=%.2f upper bound" q) true
        (approx >= exact);
      check Alcotest.bool (Printf.sprintf "q=%.2f within growth" q) true
        (approx <= exact *. 2.0 +. 1e-3))
    [ 0.1; 0.5; 0.9; 0.99 ]

let test_quantile_empty_and_extremes () =
  let h = Histogram.create () in
  check Alcotest.bool "empty is nan" true (Float.is_nan (Histogram.quantile h 0.5));
  Histogram.observe h 0.5;
  check (Alcotest.float 1e-9) "single obs at q=0" (Histogram.quantile h 0.)
    (Histogram.quantile h 1.)

(* --- Histogram: merge --- *)

let fill seed n h =
  let rng = Rng.of_int seed in
  for _ = 1 to n do
    Histogram.observe h (Rng.float rng *. 50.)
  done;
  h

let mk () = Histogram.create ~lo:1e-3 ~growth:2.0 ~bins:24 ()

let buckets_eq name a b =
  check
    Alcotest.(list (triple (float 1e-9) (float 1e-9) int))
    name (Histogram.buckets a) (Histogram.buckets b)

let test_merge_associative () =
  let a () = fill 1 100 (mk ()) in
  let b () = fill 2 250 (mk ()) in
  let c () = fill 3 50 (mk ()) in
  let left = Histogram.merge (Histogram.merge (a ()) (b ())) (c ()) in
  let right = Histogram.merge (a ()) (Histogram.merge (b ()) (c ())) in
  buckets_eq "bucket counts associative" left right;
  check Alcotest.int "count" (Histogram.count left) (Histogram.count right);
  check (Alcotest.float 1e-9) "mean" (Histogram.mean left) (Histogram.mean right);
  check (Alcotest.float 1e-9) "stddev" (Histogram.stddev left)
    (Histogram.stddev right)

let test_merge_commutative_and_identity () =
  let a () = fill 4 80 (mk ()) in
  let b () = fill 5 120 (mk ()) in
  buckets_eq "commutative" (Histogram.merge (a ()) (b ()))
    (Histogram.merge (b ()) (a ()));
  buckets_eq "empty is identity" (Histogram.merge (a ()) (mk ())) (a ())

let test_merge_rejects_shape_mismatch () =
  let a = Histogram.create ~lo:1e-3 ~growth:2.0 ~bins:24 () in
  let b = Histogram.create ~lo:1e-3 ~growth:2.0 ~bins:32 () in
  check Alcotest.bool "same_shape" false (Histogram.same_shape a b);
  match Histogram.merge a b with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "shape mismatch accepted"

(* --- Registry --- *)

let test_registry_find_or_create () =
  let reg = Registry.create () in
  let c1 = Registry.counter reg ~labels:[ ("tag", "ack") ] "net.messages" in
  let c2 = Registry.counter reg ~labels:[ ("tag", "ack") ] "net.messages" in
  Registry.inc c1 3;
  Registry.inc c2 4;
  check Alcotest.int "same instrument" 7 (Registry.counter_value c1);
  let other = Registry.counter reg ~labels:[ ("tag", "req") ] "net.messages" in
  check Alcotest.int "different labels separate" 0 (Registry.counter_value other);
  let h1 = Registry.histogram reg "lat" and h2 = Registry.histogram reg "lat" in
  Histogram.observe h1 1.0;
  check Alcotest.int "histogram shared" 1 (Histogram.count h2)

let test_registry_kind_clash () =
  let reg = Registry.create () in
  ignore (Registry.counter reg "x");
  match Registry.gauge reg "x" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind clash accepted"

let test_registry_rows_sorted () =
  let reg = Registry.create () in
  Registry.inc (Registry.counter reg "b.second") 1;
  Registry.inc (Registry.counter reg ~labels:[ ("t", "z") ] "a.first") 1;
  Registry.inc (Registry.counter reg ~labels:[ ("t", "a") ] "a.first") 1;
  Registry.set (Registry.gauge reg "c.third") 2.5;
  let names =
    List.map
      (fun (r : Registry.row) ->
        (r.Registry.name, List.map snd r.Registry.labels))
      (Registry.rows reg)
  in
  check
    Alcotest.(list (pair string (list string)))
    "sorted by (name, labels)"
    [ ("a.first", [ "a" ]); ("a.first", [ "z" ]); ("b.second", []);
      ("c.third", []) ]
    names;
  check Alcotest.int "csv rows match" 4 (List.length (Registry.csv_rows reg))

let test_registry_readonly_lookup () =
  let reg = Registry.create () in
  let hp = Registry.histogram reg ~labels:[ ("op", "put") ] "q.latency" in
  let hg = Registry.histogram reg ~labels:[ ("op", "get") ] "q.latency" in
  Histogram.observe hp 1.0;
  Histogram.observe hp 2.0;
  Histogram.observe hg 4.0;
  (* Subset label match: no labels selects every shard, a full label pins
     one. *)
  check Alcotest.int "all shards" 2 (List.length (Registry.histograms reg "q.latency"));
  check Alcotest.int "one shard" 1
    (List.length (Registry.histograms reg ~labels:[ ("op", "put") ] "q.latency"));
  check Alcotest.int "no shard" 0
    (List.length (Registry.histograms reg ~labels:[ ("op", "del") ] "q.latency"));
  (* merged aggregates across shards: the count is the sum and the merged
     quantile equals the one from observing everything into one series. *)
  (match Registry.merged reg "q.latency" with
  | None -> Alcotest.fail "merged found nothing"
  | Some m ->
      check Alcotest.int "merged count" 3 (Histogram.count m);
      let direct = Histogram.create () in
      List.iter (Histogram.observe direct) [ 1.0; 2.0; 4.0 ];
      check (Alcotest.float 1e-9) "merged p50 = combined p50"
        (Histogram.quantile direct 0.5) (Histogram.quantile m 0.5));
  (* Read-only: looking up an absent metric must not invent instruments
     that would then leak into rows/CSV. *)
  let before = List.length (Registry.rows reg) in
  check Alcotest.bool "absent metric is None" true
    (Registry.merged reg "never.observed" = None);
  check Alcotest.int "lookup registered nothing" before
    (List.length (Registry.rows reg));
  (* Merging never mutates the shards. *)
  check Alcotest.int "put shard untouched" 2 (Histogram.count hp);
  check Alcotest.int "get shard untouched" 1 (Histogram.count hg)

(* --- Trace sinks --- *)

let test_noop_is_disabled () =
  check Alcotest.bool "disabled" false (Trace.enabled Trace.noop);
  Trace.instant Trace.noop ~ts:0. ~tid:0 ~name:"x" [];
  check Alcotest.int "no events" 0 (Trace.events Trace.noop)

let test_trace_formats () =
  let buf = Buffer.create 256 in
  let tr = Trace.to_buffer Jsonl buf in
  Trace.instant tr ~ts:1e-3 ~tid:2 ~name:"drop" [ ("seq", Trace.Int 5) ];
  Trace.span tr ~ts:2e-3 ~dur:1e-3 ~tid:0 ~name:"op"
    [ ("op", Trace.Str "put"); ("ok", Trace.Bool true) ];
  Trace.close tr;
  let lines = String.split_on_char '\n' (String.trim (Buffer.contents buf)) in
  check Alcotest.int "one JSON object per event" 2 (List.length lines);
  List.iter
    (fun l ->
      check Alcotest.bool "looks like an object" true
        (String.length l > 2 && l.[0] = '{' && l.[String.length l - 1] = '}'))
    lines;
  let cbuf = Buffer.create 256 in
  let ctr = Trace.to_buffer Chrome cbuf in
  Trace.instant ctr ~ts:1e-3 ~tid:2 ~name:"drop" [];
  Trace.close ctr;
  let s = String.trim (Buffer.contents cbuf) in
  check Alcotest.bool "chrome trace is a JSON array" true
    (s.[0] = '[' && s.[String.length s - 1] = ']')

let test_format_of_path () =
  check Alcotest.bool "jsonl suffix" true
    (Trace.format_of_path "a/b/t.jsonl" = Trace.Jsonl);
  check Alcotest.bool "json suffix is chrome" true
    (Trace.format_of_path "t.json" = Trace.Chrome)

(* --- Seeded determinism: the trace is a regression oracle --- *)

(* A faulty runtime burst: creations, puts and gets under drops,
   duplicates and jitter — exercising retransmit, backoff and op spans. *)
let traced_run () =
  let buf = Buffer.create 4096 in
  let trace = Trace.to_buffer Jsonl buf in
  let reg = Registry.create () in
  let faults =
    Runtime.Fault.create ~drop:0.05 ~duplicate:0.02 ~jitter:1e-4 ~seed:2004 ()
  in
  let rt =
    Runtime.create ~pmin:8 ~approach:(Runtime.Local { vmin = 4 }) ~faults
      ~metrics:reg ~trace ~snodes:8 ~seed:2004 ()
  in
  for i = 1 to 24 do
    Runtime.create_vnode rt
      ~id:(Dht_core.Vnode_id.make ~snode:(i mod 8) ~vnode:(i / 8))
      ()
  done;
  Runtime.run rt;
  for i = 0 to 99 do
    Runtime.put rt ~key:(string_of_int i) ~value:"v" ()
  done;
  Runtime.run rt;
  for i = 0 to 99 do
    Runtime.get rt ~key:(string_of_int i) (fun _ -> ())
  done;
  Runtime.run rt;
  Runtime.record_metrics rt reg;
  Trace.close trace;
  (Buffer.contents buf, Registry.csv_rows reg)

let test_trace_deterministic () =
  let trace1, rows1 = traced_run () in
  let trace2, rows2 = traced_run () in
  check Alcotest.bool "trace is non-trivial" true (String.length trace1 > 1000);
  check Alcotest.string "traces byte-identical" trace1 trace2;
  check
    Alcotest.(list (list string))
    "metrics identical" rows1 rows2

let suite =
  [
    Alcotest.test_case "histogram: bucket boundaries" `Quick
      test_bucket_boundaries;
    Alcotest.test_case "histogram: edges survive fp drift" `Quick
      test_bucket_edges_against_drift;
    Alcotest.test_case "histogram: rejects bad observations" `Quick
      test_observe_rejects_bad_values;
    QCheck_alcotest.to_alcotest test_quantile_monotone;
    Alcotest.test_case "histogram: quantile brackets order stats" `Quick
      test_quantile_brackets_observations;
    Alcotest.test_case "histogram: quantile edge cases" `Quick
      test_quantile_empty_and_extremes;
    Alcotest.test_case "histogram: merge associative" `Quick
      test_merge_associative;
    Alcotest.test_case "histogram: merge commutative, empty identity" `Quick
      test_merge_commutative_and_identity;
    Alcotest.test_case "histogram: merge rejects shape mismatch" `Quick
      test_merge_rejects_shape_mismatch;
    Alcotest.test_case "registry: find-or-create by (name, labels)" `Quick
      test_registry_find_or_create;
    Alcotest.test_case "registry: kind clash rejected" `Quick
      test_registry_kind_clash;
    Alcotest.test_case "registry: rows sorted deterministically" `Quick
      test_registry_rows_sorted;
    Alcotest.test_case "registry: read-only histogram lookup and merge" `Quick
      test_registry_readonly_lookup;
    Alcotest.test_case "trace: noop records nothing" `Quick
      test_noop_is_disabled;
    Alcotest.test_case "trace: jsonl and chrome writers" `Quick
      test_trace_formats;
    Alcotest.test_case "trace: format from path" `Quick test_format_of_path;
    Alcotest.test_case "trace: byte-identical across seeded runs" `Quick
      test_trace_deterministic;
  ]
